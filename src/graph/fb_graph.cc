#include "graph/fb_graph.h"

#include <algorithm>
#include <unordered_map>

#include "common/bytes.h"
#include "common/logging.h"

namespace fix {

namespace {

/// Hashable refinement signature: (own class, parent class, child classes).
struct Sig {
  uint32_t own;
  uint32_t parent;
  std::vector<uint32_t> children;

  bool operator==(const Sig&) const = default;
};

struct SigHash {
  size_t operator()(const Sig& s) const {
    uint64_t h = HashMix64(0x51ab1e5, s.own);
    h = HashMix64(h, s.parent);
    for (uint32_t c : s.children) h = HashMix64(h, c);
    return static_cast<size_t>(h);
  }
};

constexpr uint32_t kNoParent = UINT32_MAX;

}  // namespace

Result<FbGraph> FbGraph::Build(const std::vector<const Document*>& docs) {
  // Per-document class assignment per node (element nodes + document node;
  // text nodes keep UINT32_MAX and are skipped everywhere).
  std::vector<std::vector<uint32_t>> cls(docs.size());
  uint32_t num_classes = 0;

  // Iteration 0: classes = labels (dense-renumbered).
  {
    std::unordered_map<LabelId, uint32_t> label_class;
    for (size_t d = 0; d < docs.size(); ++d) {
      const Document& doc = *docs[d];
      cls[d].assign(doc.num_nodes(), UINT32_MAX);
      for (NodeId n = 0; n < doc.num_nodes(); ++n) {
        if (n != 0 && !doc.IsElement(n)) continue;
        auto [it, inserted] = label_class.emplace(doc.label(n), num_classes);
        if (inserted) ++num_classes;
        cls[d][n] = it->second;
      }
    }
  }

  // Refine until stable. Each round recomputes every node's signature under
  // the current partition; stability in class count implies a fixpoint
  // because refinement only ever splits classes.
  for (int round = 0; round < 1000; ++round) {
    std::unordered_map<Sig, uint32_t, SigHash> sig_map;
    std::vector<std::vector<uint32_t>> next(docs.size());
    uint32_t next_count = 0;
    for (size_t d = 0; d < docs.size(); ++d) {
      const Document& doc = *docs[d];
      next[d].assign(doc.num_nodes(), UINT32_MAX);
      // Children appear after parents in the arena, but signatures need
      // child classes from the *current* round, which are all available.
      for (NodeId n = 0; n < doc.num_nodes(); ++n) {
        if (cls[d][n] == UINT32_MAX) continue;
        Sig sig;
        sig.own = cls[d][n];
        sig.parent =
            (n == 0) ? kNoParent : cls[d][doc.parent(n)];
        for (NodeId c = doc.first_child(n); c != kInvalidNode;
             c = doc.next_sibling(c)) {
          if (cls[d][c] == UINT32_MAX) continue;
          sig.children.push_back(cls[d][c]);
        }
        std::sort(sig.children.begin(), sig.children.end());
        sig.children.erase(
            std::unique(sig.children.begin(), sig.children.end()),
            sig.children.end());
        auto [it, inserted] = sig_map.emplace(std::move(sig), next_count);
        if (inserted) ++next_count;
        next[d][n] = it->second;
      }
    }
    bool stable = (next_count == num_classes);
    cls = std::move(next);
    num_classes = next_count;
    if (stable) break;
  }

  // Materialize classes, extents, and class-level edges.
  FbGraph graph;
  graph.classes_.resize(num_classes);
  graph.document_classes_.reserve(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    const Document& doc = *docs[d];
    std::vector<int> node_depth(doc.num_nodes(), 0);
    for (NodeId n = 0; n < doc.num_nodes(); ++n) {
      uint32_t c = cls[d][n];
      if (c == UINT32_MAX) continue;
      if (n != 0) node_depth[n] = node_depth[doc.parent(n)] + 1;
      FbClass& fc = graph.classes_[c];
      fc.label = doc.label(n);
      fc.depth = node_depth[n];
      fc.extent.push_back({static_cast<uint32_t>(d), n});
      if (n != 0) {
        uint32_t pc = cls[d][doc.parent(n)];
        fc.parents.push_back(pc);
        graph.classes_[pc].children.push_back(c);
      }
    }
    graph.document_classes_.push_back(cls[d][0]);
  }
  for (FbClass& fc : graph.classes_) {
    std::sort(fc.children.begin(), fc.children.end());
    fc.children.erase(std::unique(fc.children.begin(), fc.children.end()),
                      fc.children.end());
    std::sort(fc.parents.begin(), fc.parents.end());
    fc.parents.erase(std::unique(fc.parents.begin(), fc.parents.end()),
                     fc.parents.end());
  }
  std::sort(graph.document_classes_.begin(), graph.document_classes_.end());
  graph.document_classes_.erase(std::unique(graph.document_classes_.begin(),
                                            graph.document_classes_.end()),
                                graph.document_classes_.end());

  // Label -> classes index.
  LabelId max_label = 0;
  for (const FbClass& fc : graph.classes_) {
    max_label = std::max(max_label, fc.label);
  }
  graph.by_label_.resize(max_label + 1);
  for (FbClassId c = 0; c < graph.classes_.size(); ++c) {
    graph.by_label_[graph.classes_[c].label].push_back(c);
  }
  return graph;
}

const std::vector<FbClassId>& FbGraph::ClassesWithLabel(LabelId label) const {
  if (label >= by_label_.size()) return empty_;
  return by_label_[label];
}

uint64_t FbGraph::ApproxSizeBytes() const {
  // 12 bytes per class header, 4 per edge (one direction), 8 per extent
  // entry — comparable accounting to the disk-based F&B layout.
  return 12 * static_cast<uint64_t>(num_classes()) + 4 * num_edges() +
         8 * TotalExtent();
}

}  // namespace fix
