#include "graph/bisim_traveler.h"

#include <unordered_map>

#include "common/bytes.h"

namespace fix {

bool BisimTraveler::Next(SaxEvent* event) {
  auto open = [&](BisimVertexId v, int level) {
    event->kind = SaxEvent::Kind::kOpen;
    event->label = graph_->vertex(v).label;
    event->ref = {0, v};
    stack_.push_back({v, 0, level});
  };

  if (!started_) {
    started_ = true;
    if (start_ == kInvalidVertex) return false;
    open(start_, 1);
    return true;
  }
  while (!stack_.empty()) {
    Frame& top = stack_.back();
    const BisimVertex& v = graph_->vertex(top.vertex);
    bool at_limit = depth_limit_ > 0 && top.level >= depth_limit_;
    if (at_limit || top.next_child >= v.children.size()) {
      event->kind = SaxEvent::Kind::kClose;
      event->label = v.label;
      event->ref = {0, top.vertex};
      stack_.pop_back();
      return true;
    }
    BisimVertexId child = v.children[top.next_child++];
    open(child, top.level + 1);
    return true;
  }
  return false;
}

uint64_t ExpandedPatternSize(const BisimGraph& graph, BisimVertexId start,
                             int depth_limit, uint64_t cap) {
  // DP over (vertex, remaining levels); saturating arithmetic.
  std::unordered_map<uint64_t, uint64_t> memo;
  struct Rec {
    const BisimGraph& g;
    int limit;
    uint64_t cap;
    std::unordered_map<uint64_t, uint64_t>& memo;

    uint64_t Size(BisimVertexId v, int level) {
      bool at_limit = limit > 0 && level >= limit;
      if (at_limit) return 1;
      uint64_t key = (static_cast<uint64_t>(v) << 16) |
                     static_cast<uint64_t>(level & 0xffff);
      auto it = memo.find(key);
      if (it != memo.end()) return it->second;
      uint64_t total = 1;
      for (BisimVertexId c : g.vertex(v).children) {
        total += Size(c, level + 1);
        if (total >= cap) {
          total = cap;
          break;
        }
      }
      memo[key] = total;
      return total;
    }
  } rec{graph, depth_limit, cap, memo};
  return rec.Size(start, 1);
}

Result<BisimGraph> BuildDepthLimitedPattern(const BisimGraph& graph,
                                            BisimVertexId start,
                                            int depth_limit) {
  BisimTraveler traveler(&graph, start, depth_limit);
  BisimBuilder builder;
  return builder.Build(&traveler);
}

}  // namespace fix
