// Readiness-notification abstraction for the fixd event loop: epoll on
// Linux, poll(2) everywhere (and on demand for tests, so both backends
// stay covered on any machine).
//
// Thread-safety: a Poller is confined to the event-loop thread; nothing
// here is synchronized. Cross-thread wakeups go through a self-pipe
// registered like any other fd (see fixd_server.cc).

#ifndef FIX_SERVER_POLLER_H_
#define FIX_SERVER_POLLER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fix {
namespace server {

/// One readiness report. `error` covers hangups and socket errors; the
/// owner reacts by closing the connection.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` with the given interest set.
  /// @pre `fd` is not registered.
  [[nodiscard]] virtual Status Add(int fd, bool want_read,
                                   bool want_write) = 0;

  /// Replaces `fd`'s interest set.
  /// @pre `fd` is registered.
  [[nodiscard]] virtual Status Update(int fd, bool want_read,
                                      bool want_write) = 0;

  /// Deregisters `fd`.
  [[nodiscard]] virtual Status Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (<= 0: indefinitely) and appends every
  /// ready fd to `*events` (cleared first). An empty result is a timeout.
  [[nodiscard]] virtual Status Wait(int timeout_ms,
                                    std::vector<PollEvent>* events) = 0;

  /// Backend name for the startup log line ("epoll" / "poll").
  virtual const char* name() const = 0;

  /// Builds the best available backend; `force_poll` selects the poll(2)
  /// fallback even where epoll exists (tests exercise both).
  static std::unique_ptr<Poller> Create(bool force_poll);
};

}  // namespace server
}  // namespace fix

#endif  // FIX_SERVER_POLLER_H_
