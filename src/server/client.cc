#include "server/client.h"

#include "common/bytes.h"
#include "common/crc32c.h"

namespace fix {
namespace server {

namespace {

/// Maps a typed wire error onto the Status vocabulary, preserving the
/// server's message. The inverse of wire::CodeFromStatus, up to the codes
/// only the transport can produce.
Status StatusFromCode(wire::Code code, const std::string& message) {
  const std::string msg =
      std::string(wire::CodeName(code)) + " from server: " + message;
  switch (code) {
    case wire::Code::kOk:
      return Status::OK();
    case wire::Code::kNotFound:
      return Status::NotFound(msg);
    case wire::Code::kParseError:
      return Status::ParseError(msg);
    case wire::Code::kBadRequest:
    case wire::Code::kBadFrame:
      return Status::InvalidArgument(msg);
    case wire::Code::kOverloaded:
    case wire::Code::kShuttingDown:
      return Status::Unavailable(msg);
    case wire::Code::kIOError:
      return Status::IOError(msg);
    case wire::Code::kInternal:
      return Status::Internal(msg);
  }
  return Status::Internal(msg);
}

}  // namespace

Result<std::unique_ptr<FixdClient>> FixdClient::Connect(
    const std::string& host, uint16_t port, int timeout_ms) {
  FIX_ASSIGN_OR_RETURN(net::Fd fd, net::ConnectTcp(host, port, timeout_ms));
  return std::unique_ptr<FixdClient>(
      new FixdClient(std::move(fd), timeout_ms));
}

Result<std::unique_ptr<FixdClient>> FixdClient::Connect(
    const std::string& address, int timeout_ms) {
  std::string host;
  uint16_t port = 0;
  FIX_RETURN_IF_ERROR(net::ParseHostPort(address, &host, &port));
  return Connect(host, port, timeout_ms);
}

Status FixdClient::RoundTrip(wire::Op op, std::string_view request,
                             std::string* response) {
  std::string framed;
  framed.reserve(wire::kHeaderSize + request.size());
  wire::AppendFrame(static_cast<uint8_t>(op), request, &framed);
  FIX_RETURN_IF_ERROR(net::SendAll(fd_.get(), framed, timeout_ms_));

  char header[wire::kHeaderSize];
  FIX_RETURN_IF_ERROR(
      net::RecvExact(fd_.get(), header, sizeof(header), timeout_ms_));
  if (header[0] != wire::kMagic0 || header[1] != wire::kMagic1) {
    return Status::IOError("wire: bad magic in response header");
  }
  if (static_cast<uint8_t>(header[2]) != wire::kProtocolVersion) {
    return Status::IOError("wire: server speaks protocol version " +
                           std::to_string(static_cast<uint8_t>(header[2])));
  }
  const uint8_t type = static_cast<uint8_t>(header[3]);
  const uint32_t payload_len = DecodeFixed32(header + 4);
  const uint32_t want_crc = DecodeFixed32(header + 8);
  if (payload_len > wire::kMaxPayload) {
    return Status::IOError("wire: oversized response payload");
  }
  response->resize(payload_len);
  if (payload_len > 0) {
    FIX_RETURN_IF_ERROR(
        net::RecvExact(fd_.get(), response->data(), payload_len,
                       timeout_ms_));
  }
  if (Crc32c(response->data(), response->size()) != want_crc) {
    return Status::IOError("wire: response payload CRC mismatch");
  }
  // A bare kResponseBit type is the server's frame-level failure channel
  // (it could not attribute the error to an opcode).
  if (type != (static_cast<uint8_t>(op) | wire::kResponseBit) &&
      type != wire::kResponseBit) {
    return Status::IOError("wire: response opcode mismatch");
  }
  wire::Code code = wire::Code::kOk;
  std::string error;
  size_t body_offset = 0;
  FIX_RETURN_IF_ERROR(
      wire::DecodeResponseHead(*response, &code, &error, &body_offset));
  if (code != wire::Code::kOk) return StatusFromCode(code, error);
  return Status::OK();
}

Status FixdClient::Ping() {
  std::string response;
  return RoundTrip(wire::Op::kPing, "", &response);
}

Result<wire::QueryOutcome> FixdClient::Query(const std::string& index,
                                             const std::string& xpath) {
  wire::QueryRequest req{index, xpath};
  std::string payload;
  wire::EncodeQueryRequest(req, &payload);
  std::string response;
  FIX_RETURN_IF_ERROR(RoundTrip(wire::Op::kQuery, payload, &response));
  wire::QueryOutcome outcome;
  FIX_RETURN_IF_ERROR(wire::DecodeQueryResponse(response, &outcome));
  return outcome;
}

Result<std::vector<wire::QueryOutcome>> FixdClient::QueryBatch(
    const std::string& index, const std::vector<std::string>& xpaths,
    uint32_t threads) {
  wire::QueryBatchRequest req;
  req.index = index;
  req.threads = threads;
  req.xpaths = xpaths;
  std::string payload;
  wire::EncodeQueryBatchRequest(req, &payload);
  std::string response;
  FIX_RETURN_IF_ERROR(RoundTrip(wire::Op::kQueryBatch, payload, &response));
  std::vector<wire::QueryOutcome> outcomes;
  FIX_RETURN_IF_ERROR(wire::DecodeQueryBatchResponse(response, &outcomes));
  return outcomes;
}

Result<wire::InsertResponse> FixdClient::Insert(const std::string& index,
                                                const std::string& xml) {
  wire::InsertRequest req{index, xml};
  std::string payload;
  wire::EncodeInsertRequest(req, &payload);
  std::string response;
  FIX_RETURN_IF_ERROR(RoundTrip(wire::Op::kInsert, payload, &response));
  wire::InsertResponse resp;
  FIX_RETURN_IF_ERROR(wire::DecodeInsertResponse(response, &resp));
  return resp;
}

Result<std::string> FixdClient::Stats() {
  std::string response;
  FIX_RETURN_IF_ERROR(RoundTrip(wire::Op::kStats, "", &response));
  wire::StatsResponse resp;
  FIX_RETURN_IF_ERROR(wire::DecodeStatsResponse(response, &resp));
  return resp.prometheus_text;
}

}  // namespace server
}  // namespace fix
