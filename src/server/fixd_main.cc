// fixd: the FIX query server binary. Opens a database directory built by
// fixctl (gen + build), serves the wire protocol plus HTTP /stats and
// /healthz, and drains gracefully on SIGTERM/SIGINT. SIGHUP hot-reloads
// the serving index. See docs/FIXD.md for the full operations manual.

#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/status.h"
#include "core/database.h"
#include "core/sharded_database.h"
#include "server/fixd_server.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir DIR [options]\n"
               "\n"
               "Serve a FIX database over the fixd wire protocol + HTTP.\n"
               "\n"
               "  --dir DIR             database directory (fixctl gen/build "
               "layout); required\n"
               "  --index NAME          serving index for INSERT and SIGHUP "
               "reload (default: main)\n"
               "  --host HOST           bind address (default: 127.0.0.1)\n"
               "  --port PORT           bind port; 0 = kernel-assigned "
               "(default: 7133)\n"
               "  --workers N           request worker threads (default: 4)\n"
               "  --max-inflight N      admission bound before kOverloaded "
               "shedding (default: 128)\n"
               "  --read-timeout-ms N   idle connection reap (default: "
               "60000; 0 = off)\n"
               "  --write-timeout-ms N  stalled response reap (default: "
               "10000; 0 = off)\n"
               "  --drain-timeout-ms N  force-close deadline for graceful "
               "drain (default: 10000)\n"
               "  --force-poll          use poll(2) even where epoll is "
               "available\n"
               "\n"
               "Signals: SIGTERM/SIGINT drain gracefully (exit 0 when "
               "clean); SIGHUP rebuilds\n"
               "and hot-swaps the serving index.\n",
               argv0);
  return 2;
}

bool ParseInt(const char* text, long min, long max, long* out) {
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < min || v > max) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  fix::server::ServerOptions options;
  options.port = 7133;
  options.index = "main";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long v = 0;
    if (arg == "--dir") {
      const char* val = next();
      if (val == nullptr) return Usage(argv[0]);
      dir = val;
    } else if (arg == "--index") {
      const char* val = next();
      if (val == nullptr) return Usage(argv[0]);
      options.index = val;
    } else if (arg == "--host") {
      const char* val = next();
      if (val == nullptr) return Usage(argv[0]);
      options.host = val;
    } else if (arg == "--port") {
      const char* val = next();
      if (val == nullptr || !ParseInt(val, 0, 65535, &v)) {
        return Usage(argv[0]);
      }
      options.port = static_cast<uint16_t>(v);
    } else if (arg == "--workers") {
      const char* val = next();
      if (val == nullptr || !ParseInt(val, 1, 256, &v)) return Usage(argv[0]);
      options.workers = static_cast<int>(v);
    } else if (arg == "--max-inflight") {
      const char* val = next();
      if (val == nullptr || !ParseInt(val, 1, 1 << 20, &v)) {
        return Usage(argv[0]);
      }
      options.max_inflight = static_cast<int>(v);
    } else if (arg == "--read-timeout-ms") {
      const char* val = next();
      if (val == nullptr || !ParseInt(val, 0, 1 << 30, &v)) {
        return Usage(argv[0]);
      }
      options.read_timeout_ms = static_cast<int>(v);
    } else if (arg == "--write-timeout-ms") {
      const char* val = next();
      if (val == nullptr || !ParseInt(val, 0, 1 << 30, &v)) {
        return Usage(argv[0]);
      }
      options.write_timeout_ms = static_cast<int>(v);
    } else if (arg == "--drain-timeout-ms") {
      const char* val = next();
      if (val == nullptr || !ParseInt(val, 0, 1 << 30, &v)) {
        return Usage(argv[0]);
      }
      options.drain_timeout_ms = static_cast<int>(v);
    } else if (arg == "--force-poll") {
      options.force_poll = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "fixd: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);

  // Block the lifecycle signals in every thread before any is spawned;
  // the sigwait thread below is then the only consumer, so a drain can
  // never race a default handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGHUP);
  if (pthread_sigmask(SIG_BLOCK, &sigs, nullptr) != 0) {
    std::fprintf(stderr, "fixd: pthread_sigmask failed\n");
    return 1;
  }

  // A directory carrying shards.manifest (fixctl build --shards) serves
  // through the scatter-gather backend; anything else is the classic
  // single-Database layout. Exactly one of the two stays open.
  std::unique_ptr<fix::Database> db;
  std::unique_ptr<fix::ShardedDatabase> sdb;
  if (fix::IsShardedLayout(dir)) {
    auto opened = fix::ShardedDatabase::Open(dir);
    if (!opened.ok()) {
      FIX_LOG(Error) << "fixd: cannot open sharded database at '" << dir
                     << "': " << opened.status();
      return 1;
    }
    sdb = std::move(opened).value();
    FIX_LOG(Info) << "fixd: sharded layout, " << sdb->shard_count()
                  << " shard(s), generation " << sdb->layout_generation();
  } else {
    auto opened = fix::Database::Open(dir);
    if (!opened.ok()) {
      FIX_LOG(Error) << "fixd: cannot open database at '" << dir
                     << "': " << opened.status();
      return 1;
    }
    db = std::move(opened).value();
    if (!options.index.empty() && db->index(options.index) == nullptr &&
        !db->IsDegraded(options.index)) {
      FIX_LOG(Warning) << "fixd: serving index '" << options.index
                       << "' is not attached; QUERY against it will fail "
                          "until it is built (fixctl build) or inserted";
    }
  }

  fix::server::Server server =
      sdb != nullptr ? fix::server::Server(sdb.get(), options)
                     : fix::server::Server(db.get(), options);
  fix::Status started = server.Start();
  if (!started.ok()) {
    FIX_LOG(Error) << "fixd: start failed: " << started;
    return 1;
  }
  // Machine-readable startup line on stdout (ci.sh and scripts parse the
  // port out of it; FIX_LOG goes to stderr).
  std::printf("fixd: listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::thread signal_thread([&server, &sigs] {
    for (;;) {
      int sig = 0;
      if (sigwait(&sigs, &sig) != 0) continue;
      if (sig == SIGHUP) {
        FIX_LOG(Info) << "fixd: SIGHUP, reloading index";
        fix::Status reloaded = server.ReloadIndex();
        if (!reloaded.ok()) {
          FIX_LOG(Error) << "fixd: reload failed: " << reloaded;
        }
        continue;
      }
      FIX_LOG(Info) << "fixd: " << strsignal(sig) << ", draining";
      server.BeginDrain();
      return;
    }
  });

  fix::Status drained = server.WaitDrained();
  // If the loop exited on its own (internal failure), unblock the signal
  // thread. The signal is process-directed and SIGTERM is blocked
  // everywhere, so if the thread has already exited it simply stays
  // pending until process exit.
  kill(getpid(), SIGTERM);
  signal_thread.join();

  if (!drained.ok()) {
    FIX_LOG(Error) << "fixd: drain: " << drained;
    return 1;
  }
  std::printf("fixd: drained cleanly\n");
  return 0;
}
