// FixdClient: a blocking wire-protocol client for fixd, shared by
// `fixctl --remote`, `bench_qps --remote`, and the service tests. One
// request in flight per connection (matching the server's model); open
// several clients for concurrency.
//
// Error mapping: transport failures surface as IOError/Unavailable;
// typed server errors come back as the Status the wire code maps to
// (kOverloaded → Unavailable, kNotFound → NotFound, kParseError →
// ParseError, ...), with the server's message preserved — so a caller
// can distinguish a shed request (retryable) from a bad query.
//
// Thread-safety: a FixdClient is confined to one thread at a time.

#ifndef FIX_SERVER_CLIENT_H_
#define FIX_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/net.h"
#include "common/result.h"
#include "common/status.h"
#include "common/wire.h"

namespace fix {
namespace server {

class FixdClient {
 public:
  /// Connects to host:port; `timeout_ms` bounds the handshake and every
  /// subsequent send/receive wait (<= 0: no deadline).
  [[nodiscard]] static Result<std::unique_ptr<FixdClient>> Connect(
      const std::string& host, uint16_t port, int timeout_ms = 5000);

  /// Parses "host:port" and connects.
  [[nodiscard]] static Result<std::unique_ptr<FixdClient>> Connect(
      const std::string& address, int timeout_ms = 5000);

  /// Round-trips a PING.
  [[nodiscard]] Status Ping();

  /// Executes one XPath against `index`. A typed server error (NotFound,
  /// ParseError, Overloaded, ...) is returned as the mapped Status.
  [[nodiscard]] Result<wire::QueryOutcome> Query(const std::string& index,
                                                 const std::string& xpath);

  /// Executes a batch with server-side fan-out of `threads`. Whole-batch
  /// failures (unknown index, shed) map to Status; per-query failures
  /// stay typed inside each returned outcome.
  [[nodiscard]] Result<std::vector<wire::QueryOutcome>> QueryBatch(
      const std::string& index, const std::vector<std::string>& xpaths,
      uint32_t threads);

  /// Adds one XML document, extending `index` incrementally when
  /// non-empty.
  [[nodiscard]] Result<wire::InsertResponse> Insert(const std::string& index,
                                                    const std::string& xml);

  /// Fetches the server's Prometheus text exposition.
  [[nodiscard]] Result<std::string> Stats();

 private:
  FixdClient(net::Fd fd, int timeout_ms)
      : fd_(std::move(fd)), timeout_ms_(timeout_ms) {}

  /// Sends one request frame and receives the matching response payload.
  /// Fails on transport errors, frame corruption, a mismatched response
  /// opcode, or a typed top-level server error (mapped Status).
  [[nodiscard]] Status RoundTrip(wire::Op op, std::string_view request,
                                 std::string* response);

  net::Fd fd_;
  int timeout_ms_;
};

}  // namespace server
}  // namespace fix

#endif  // FIX_SERVER_CLIENT_H_
