#include "server/http.h"

namespace fix {
namespace server {
namespace http {

bool LooksLikeHttp(std::string_view prefix) {
  if (prefix.size() < 4) return false;
  return prefix.substr(0, 4) == "GET " || prefix.substr(0, 4) == "HEAD" ||
         prefix.substr(0, 4) == "POST" || prefix.substr(0, 4) == "PUT " ||
         prefix.substr(0, 4) == "DELE" || prefix.substr(0, 4) == "OPTI";
}

bool HasFullRequest(std::string_view buf) {
  return buf.find("\r\n\r\n") != std::string_view::npos;
}

Status ParseRequest(std::string_view head, Request* request) {
  size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) {
    return Status::ParseError("http: no request line");
  }
  std::string_view line = head.substr(0, eol);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return Status::ParseError("http: malformed request line");
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return Status::ParseError("http: malformed request line");
  }
  request->method = std::string(line.substr(0, sp1));
  request->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  return Status::OK();
}

std::string MakeResponse(int status_code, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status_code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace http
}  // namespace server
}  // namespace fix
