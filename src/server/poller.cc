#include "server/poller.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>

#if defined(__linux__)
#include <sys/epoll.h>
#define FIX_HAVE_EPOLL 1
#endif

namespace fix {
namespace server {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// poll(2) backend: a flat interest map rebuilt into a pollfd array per
/// Wait. O(n) per wait, which is fine at fixd's connection counts; the
/// epoll backend exists for the long tail.
class PollPoller final : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    if (interest_.count(fd) != 0) {
      return Status::Internal("poller: fd already registered");
    }
    interest_[fd] = Events(want_read, want_write);
    return Status::OK();
  }

  Status Update(int fd, bool want_read, bool want_write) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
      return Status::Internal("poller: update of unregistered fd");
    }
    it->second = Events(want_read, want_write);
    return Status::OK();
  }

  Status Remove(int fd) override {
    if (interest_.erase(fd) == 0) {
      return Status::Internal("poller: remove of unregistered fd");
    }
    return Status::OK();
  }

  Status Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    events->clear();
    pfds_.clear();
    pfds_.reserve(interest_.size());
    for (const auto& [fd, ev] : interest_) {
      pfds_.push_back(pollfd{fd, ev, 0});
    }
    int rc;
    do {
      rc = ::poll(pfds_.data(), pfds_.size(),
                  timeout_ms <= 0 ? -1 : timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Status::IOError(Errno("poll"));
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      PollEvent out;
      out.fd = p.fd;
      out.readable = (p.revents & POLLIN) != 0;
      out.writable = (p.revents & POLLOUT) != 0;
      out.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(out);
    }
    return Status::OK();
  }

  const char* name() const override { return "poll"; }

 private:
  static short Events(bool want_read, bool want_write) {
    short e = 0;
    if (want_read) e |= POLLIN;
    if (want_write) e |= POLLOUT;
    return e;
  }

  std::map<int, short> interest_;
  std::vector<pollfd> pfds_;  // scratch, reused across Waits
};

#if FIX_HAVE_EPOLL
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool ok() const { return epfd_ >= 0; }

  Status Add(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, want_read, want_write);
  }

  Status Update(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }

  Status Remove(int fd) override {
    struct epoll_event ev = {};
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev) != 0) {
      return Status::IOError(Errno("epoll_ctl(DEL)"));
    }
    return Status::OK();
  }

  Status Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    events->clear();
    struct epoll_event evs[64];
    int rc;
    do {
      rc = ::epoll_wait(epfd_, evs, 64, timeout_ms <= 0 ? -1 : timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Status::IOError(Errno("epoll_wait"));
    for (int i = 0; i < rc; ++i) {
      PollEvent out;
      out.fd = static_cast<int>(evs[i].data.fd);
      out.readable = (evs[i].events & EPOLLIN) != 0;
      out.writable = (evs[i].events & EPOLLOUT) != 0;
      out.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(out);
    }
    return Status::OK();
  }

  const char* name() const override { return "epoll"; }

 private:
  Status Ctl(int op, int fd, bool want_read, bool want_write) {
    struct epoll_event ev = {};
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      return Status::IOError(Errno("epoll_ctl"));
    }
    return Status::OK();
  }

  int epfd_ = -1;
};
#endif  // FIX_HAVE_EPOLL

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool force_poll) {
#if FIX_HAVE_EPOLL
  if (!force_poll) {
    auto ep = std::make_unique<EpollPoller>();
    if (ep->ok()) return ep;
    // epoll_create1 failing (fd exhaustion, exotic kernels) falls through
    // to the portable backend rather than failing startup.
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace server
}  // namespace fix
