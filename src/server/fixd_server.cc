#include "server/fixd_server.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "common/wire.h"
#include "server/http.h"

namespace fix {
namespace server {

namespace {

constexpr int kLoopTickMs = 100;   // timeout/drain bookkeeping cadence
constexpr size_t kReadChunk = 64 * 1024;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Gauge& ConnectionsOpen() {
  static Gauge* g = MetricsRegistry::Instance().FindOrCreateGauge(
      "fixd.connections.open", "connections",
      "client connections currently open (wire + HTTP)");
  return *g;
}
Counter& ConnectionsTotal() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.connections.total", "connections",
      "client connections accepted since start");
  return *c;
}
Counter& RequestsTotal() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.requests.total", "requests",
      "wire requests admitted (all opcodes; HTTP not included)");
  return *c;
}
Counter& RequestsByOp(uint8_t op) {
  // One counter per opcode (the registry has no labels); unknown ops are
  // rejected before admission and never reach here.
  static Counter* ping = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.requests.ping", "requests", "PING requests admitted");
  static Counter* query = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.requests.query", "requests", "QUERY requests admitted");
  static Counter* batch = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.requests.query_batch", "requests",
      "QUERY_BATCH requests admitted");
  static Counter* insert = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.requests.insert", "requests", "INSERT requests admitted");
  static Counter* stats = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.requests.stats", "requests", "STATS requests admitted");
  switch (static_cast<wire::Op>(op)) {
    case wire::Op::kPing: return *ping;
    case wire::Op::kQuery: return *query;
    case wire::Op::kQueryBatch: return *batch;
    case wire::Op::kInsert: return *insert;
    case wire::Op::kStats: return *stats;
  }
  return *ping;  // unreachable: callers admit known ops only
}
Counter& RequestsShed() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.requests.shed", "requests",
      "requests answered kOverloaded by admission control");
  return *c;
}
Counter& HttpRequests() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fixd.http.requests", "requests",
      "HTTP requests served (/stats, /healthz)");
  return *c;
}
Gauge& QueueDepth() {
  static Gauge* g = MetricsRegistry::Instance().FindOrCreateGauge(
      "fixd.queue.depth", "requests",
      "requests in flight (admitted, response not yet queued)");
  return *g;
}
Histogram& RequestLatency() {
  static Histogram* h = MetricsRegistry::Instance().FindOrCreateHistogram(
      "fixd.request.latency_us", "us",
      "admitted wire request latency, admission to response queued");
  return *h;
}

}  // namespace

/// Per-connection state. Owned by the loop thread through conns_;
/// workers hold a shared_ptr while executing that connection's request
/// and touch only the mu_-guarded output fields.
struct Conn {
  explicit Conn(net::Fd sock) : fd(sock.get()), owner(std::move(sock)) {}

  const int fd;
  net::Fd owner;

  // --- loop-thread-only state ---
  wire::FrameReader reader;
  std::string http_in;
  bool sniffed = false;
  bool http_mode = false;
  bool busy = false;              // a request is executing on a worker
  bool close_after_flush = false;
  int64_t last_active_ms = 0;     // last read progress (idle reaping)
  int64_t last_flush_ms = 0;      // last write progress (stall reaping)
  int64_t request_start_us = 0;   // admission time of the in-flight request

  // --- shared with workers ---
  // LOCK-ORDER: 11 Conn::mu_
  Mutex mu_;
  std::string out FIX_GUARDED_BY(mu_);
  bool response_ready FIX_GUARDED_BY(mu_) = false;
};

Server::Server(Database* db, ServerOptions options)
    : db_(db), sdb_(nullptr), options_(std::move(options)) {}

Server::Server(ShardedDatabase* sdb, ServerOptions options)
    : db_(nullptr), sdb_(sdb), options_(std::move(options)) {}

Server::~Server() {
  if (started_.load()) {
    // Failure here is already recorded in loop_status_ and reported by
    // any explicit WaitDrained caller; the destructor just has to join.
    (void)Stop();
  }
}

Status Server::Start() {
  FIX_CHECK(!started_.load());

  FIX_ASSIGN_OR_RETURN(listener_,
                       net::ListenTcp(options_.host, options_.port, 128));
  FIX_RETURN_IF_ERROR(net::SetNonBlocking(listener_.get(), true));
  FIX_ASSIGN_OR_RETURN(port_, net::LocalPort(listener_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Status::IOError("fixd: pipe failed");
  wake_read_ = net::Fd(pipe_fds[0]);
  wake_write_ = net::Fd(pipe_fds[1]);
  FIX_RETURN_IF_ERROR(net::SetNonBlocking(wake_read_.get(), true));
  FIX_RETURN_IF_ERROR(net::SetNonBlocking(wake_write_.get(), true));

  poller_ = Poller::Create(options_.force_poll);
  FIX_RETURN_IF_ERROR(poller_->Add(listener_.get(), true, false));
  FIX_RETURN_IF_ERROR(poller_->Add(wake_read_.get(), true, false));

  pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(1, options_.workers)));
  started_.store(true);
  loop_ = std::thread([this] { LoopThread(); });
  FIX_LOG(Info) << "fixd: listening on " << options_.host << ":" << port_
                << " (" << poller_->name() << ", "
                << pool_->num_threads() << " workers, max_inflight="
                << options_.max_inflight << ")";
  return Status::OK();
}

void Server::BeginDrain() {
  draining_.store(true);
  Wake();
}

Status Server::WaitDrained() {
  FIX_CHECK(started_.load());
  {
    MutexLock lock(state_mu_);
    while (!loop_exited_) state_cv_.Wait(state_mu_);
  }
  if (loop_.joinable()) loop_.join();
  // The loop queues no further work after exiting; drain the pool before
  // reporting so in-flight Execute bodies cannot touch a dead server.
  pool_.reset();
  started_.store(false);
  MutexLock lock(state_mu_);
  return loop_status_;
}

Status Server::ReloadIndex() {
  if (options_.index.empty()) {
    return Status::NotSupported("fixd: no serving index configured");
  }
  MutexLock writer(writer_mu_);
  if (sdb_ != nullptr) {
    FIX_RETURN_IF_ERROR(sdb_->RebuildIndexes(options_.index));
  } else {
    auto rebuilt = db_->RebuildIndex(options_.index, options_.index_options);
    if (!rebuilt.ok()) return rebuilt.status();
  }
  FIX_LOG(Info) << "fixd: index '" << options_.index << "' reloaded";
  return Status::OK();
}

void Server::Wake() {
  char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  ssize_t n = ::write(wake_write_.get(), &byte, 1);
  (void)n;
}

void Server::LoopThread() {
  Status status = LoopBody();
  if (!status.ok()) {
    FIX_LOG(Error) << "fixd: event loop failed: " << status;
  }
  MutexLock lock(state_mu_);
  loop_status_ = std::move(status);
  loop_exited_ = true;
  state_cv_.NotifyAll();
}

Status Server::LoopBody() {
  std::vector<PollEvent> events;
  bool listener_open = true;
  int64_t drain_started_ms = 0;
  bool drain_forced = false;

  for (;;) {
    const bool draining = draining_.load();
    const int64_t now_ms = NowMs();

    if (draining && listener_open) {
      FIX_RETURN_IF_ERROR(poller_->Remove(listener_.get()));
      listener_.Close();
      listener_open = false;
      drain_started_ms = now_ms;
      FIX_LOG(Info) << "fixd: draining (" << conns_.size()
                    << " connections, " << inflight() << " in flight)";
    }

    // Refresh every connection's interest set, reap timeouts, and apply
    // deferred closes. Interest: read only while no request is in flight
    // (single outstanding request per connection — TCP backpressure does
    // the queueing); write while output is pending.
    std::vector<int> to_close;
    for (auto& [fd, conn] : conns_) {
      bool response_ready;
      {
        MutexLock lock(conn->mu_);
        response_ready = conn->response_ready;
        conn->response_ready = false;
      }
      if (response_ready && conn->busy) {
        conn->busy = false;
        conn->last_active_ms = now_ms;
        // A pipelining client's next frame may already be buffered; no
        // socket event will re-announce it, so dispatch it here.
        if (!conn->http_mode) ProcessFrames(conn);
      }
      bool has_out;
      {
        MutexLock lock(conn->mu_);
        has_out = !conn->out.empty();
      }
      if (!has_out) {
        if (conn->close_after_flush || (draining && !conn->busy)) {
          to_close.push_back(fd);
          continue;
        }
      } else if (conn->last_flush_ms == 0) {
        conn->last_flush_ms = now_ms;
      }
      if (options_.read_timeout_ms > 0 && !conn->busy && !has_out &&
          now_ms - conn->last_active_ms > options_.read_timeout_ms) {
        FIX_LOG(Warning) << "fixd: closing idle connection (fd " << fd
                         << ")";
        to_close.push_back(fd);
        continue;
      }
      if (options_.write_timeout_ms > 0 && has_out &&
          now_ms - conn->last_flush_ms > options_.write_timeout_ms) {
        FIX_LOG(Warning) << "fixd: closing stalled connection (fd " << fd
                         << ")";
        to_close.push_back(fd);
        continue;
      }
      const bool want_read = !conn->busy && !conn->close_after_flush &&
                             !draining;
      FIX_RETURN_IF_ERROR(poller_->Update(fd, want_read, has_out));
    }
    for (int fd : to_close) CloseConn(fd);

    if (draining) {
      if (conns_.empty() && inflight() == 0) break;
      if (options_.drain_timeout_ms > 0 &&
          now_ms - drain_started_ms > options_.drain_timeout_ms) {
        FIX_LOG(Warning) << "fixd: drain deadline exceeded; force-closing "
                         << conns_.size() << " connections";
        std::vector<int> all;
        for (auto& [fd, conn] : conns_) all.push_back(fd);
        for (int fd : all) CloseConn(fd);
        drain_forced = true;
        // In-flight work may still hold connection references; the pool
        // join in WaitDrained reaps it.
        break;
      }
    }

    FIX_RETURN_IF_ERROR(poller_->Wait(kLoopTickMs, &events));

    for (const PollEvent& ev : events) {
      if (ev.fd == wake_read_.get()) {
        char buf[256];
        while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (listener_open && ev.fd == listener_.get()) {
        AcceptAll();
        continue;
      }
      auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      std::shared_ptr<Conn> conn = it->second;
      if (ev.error) {
        CloseConn(ev.fd);
        continue;
      }
      if (ev.writable) OnWritable(conn);
      if (ev.readable) OnReadable(conn);
    }
  }

  if (drain_forced) {
    return Status::Internal("fixd: drain deadline forced connections closed");
  }
  return Status::OK();
}

void Server::AcceptAll() {
  for (;;) {
    int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / EINTR / transient — next readiness
    net::Fd sock(fd);
    if (!net::SetNonBlocking(fd, true).ok()) continue;  // closes sock
    auto conn = std::make_shared<Conn>(std::move(sock));
    conn->last_active_ms = NowMs();
    if (!poller_->Add(fd, true, false).ok()) continue;
    conns_.emplace(fd, std::move(conn));
    ConnectionsOpen().Add(1);
    ConnectionsTotal().Increment();
  }
}

void Server::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Remove may fail benignly if the kernel already dropped the fd on
  // hangup; the erase below closes it either way.
  (void)poller_->Remove(fd);
  conns_.erase(it);
  ConnectionsOpen().Add(-1);
}

void Server::OnReadable(const std::shared_ptr<Conn>& conn) {
  char buf[kReadChunk];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      CloseConn(conn->fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(conn->fd);
      return;
    }
    conn->last_active_ms = NowMs();
    std::string_view bytes(buf, static_cast<size_t>(n));

    if (!conn->sniffed) {
      conn->http_in.append(bytes);
      if (conn->http_in.size() < 4) continue;
      conn->sniffed = true;
      conn->http_mode = http::LooksLikeHttp(conn->http_in);
      if (!conn->http_mode) {
        conn->reader.Feed(conn->http_in);
        conn->http_in.clear();
      }
      bytes = {};
    }

    if (conn->http_mode) {
      conn->http_in.append(bytes);
      if (conn->http_in.size() > http::kMaxRequestBytes) {
        {
          MutexLock lock(conn->mu_);
          conn->out += http::MakeResponse(
              431, "Request Header Fields Too Large", "text/plain",
              "request too large\n");
        }
        conn->close_after_flush = true;
        return;
      }
      if (http::HasFullRequest(conn->http_in)) {
        ServeHttp(conn, conn->http_in);
        conn->http_in.clear();
        return;
      }
      continue;
    }

    conn->reader.Feed(bytes);
    ProcessFrames(conn);
  }
}

void Server::ProcessFrames(const std::shared_ptr<Conn>& conn) {
  while (!conn->busy && !conn->close_after_flush) {
    wire::Frame frame;
    std::string error;
    auto outcome = conn->reader.Next(&frame, &error);
    if (outcome == wire::FrameReader::Outcome::kNeedMore) break;
    if (outcome == wire::FrameReader::Outcome::kBad) {
      // The stream has lost sync: answer with a typed BadFrame (best
      // effort) and close once it flushes.
      std::string payload;
      wire::EncodeErrorResponse(wire::Code::kBadFrame, error, &payload);
      std::string framed;
      wire::AppendFrame(wire::kResponseBit, payload, &framed);
      MutexLock lock(conn->mu_);
      conn->out += framed;
      conn->close_after_flush = true;
      break;
    }
    Dispatch(conn, frame.type, std::move(frame.payload));
  }
}

void Server::OnWritable(const std::shared_ptr<Conn>& conn) {
  std::string pending;
  {
    MutexLock lock(conn->mu_);
    pending.swap(conn->out);
  }
  size_t off = 0;
  while (off < pending.size()) {
    ssize_t n = ::send(conn->fd, pending.data() + off, pending.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      conn->last_flush_ms = NowMs();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn->fd);
    return;
  }
  bool empty;
  {
    MutexLock lock(conn->mu_);
    // Workers may have appended while we were sending; keep order.
    conn->out.insert(0, pending, off, pending.size() - off);
    empty = conn->out.empty();
  }
  if (empty) {
    conn->last_flush_ms = 0;
    if (conn->close_after_flush) CloseConn(conn->fd);
  }
}

void Server::ServeHttp(const std::shared_ptr<Conn>& conn,
                       const std::string& head) {
  HttpRequests().Increment();
  http::Request request;
  std::string response;
  Status parsed = http::ParseRequest(head, &request);
  if (!parsed.ok()) {
    response = http::MakeResponse(400, "Bad Request", "text/plain",
                                  parsed.message() + "\n");
  } else if (request.method != "GET" && request.method != "HEAD") {
    response = http::MakeResponse(405, "Method Not Allowed", "text/plain",
                                  "only GET is served here\n");
  } else if (request.target == "/stats" || request.target == "/metrics") {
    response = http::MakeResponse(
        200, "OK", "text/plain; version=0.0.4",
        MetricsRegistry::Instance().PrometheusText());
  } else if (request.target == "/healthz") {
    if (draining_.load()) {
      response =
          http::MakeResponse(503, "Service Unavailable", "text/plain",
                             "draining\n");
    } else {
      response = http::MakeResponse(200, "OK", "text/plain", "ok\n");
    }
  } else {
    response = http::MakeResponse(404, "Not Found", "text/plain",
                                  "try /stats or /healthz\n");
  }
  {
    MutexLock lock(conn->mu_);
    conn->out += response;
  }
  conn->close_after_flush = true;
}

void Server::Dispatch(const std::shared_ptr<Conn>& conn, uint8_t type,
                      std::string payload) {
  const uint8_t response_type = type | wire::kResponseBit;
  auto reject = [&](wire::Code code, const std::string& message) {
    std::string body;
    wire::EncodeErrorResponse(code, message, &body);
    QueueResponse(conn, response_type, body, false);
  };

  if ((type & wire::kResponseBit) != 0 || !wire::IsKnownOp(type)) {
    reject(wire::Code::kBadRequest,
           "unknown opcode " + std::to_string(type));
    return;
  }
  if (draining_.load()) {
    reject(wire::Code::kShuttingDown, "server is draining");
    return;
  }
  // Admission control: a bounded in-flight population. Shedding answers
  // immediately — the client gets a typed retryable error instead of an
  // unbounded queue or a dropped connection.
  int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (inflight >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    RequestsShed().Increment();
    reject(wire::Code::kOverloaded,
           "in flight limit (" + std::to_string(options_.max_inflight) +
               ") reached; retry with backoff");
    return;
  }
  QueueDepth().Set(inflight + 1);
  RequestsTotal().Increment();
  RequestsByOp(type).Increment();
  conn->busy = true;
  conn->request_start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  pool_->Submit([this, conn, type, payload = std::move(payload)] {
    Execute(conn, type, payload);
  });
}

void Server::Execute(const std::shared_ptr<Conn>& conn, uint8_t type,
                     const std::string& payload) {
  if (options_.dispatch_hook_for_test) options_.dispatch_hook_for_test(type);

  TraceSpan span("server.request");
  span.AddAttr("op", static_cast<uint64_t>(type));

  std::string body;
  const auto op = static_cast<wire::Op>(type);
  switch (op) {
    case wire::Op::kPing: {
      body.push_back(static_cast<char>(wire::Code::kOk));
      break;
    }
    case wire::Op::kQuery: {
      wire::QueryRequest req;
      Status parsed = DecodeQueryRequest(payload, &req);
      if (!parsed.ok()) {
        wire::EncodeErrorResponse(wire::Code::kBadRequest, parsed.message(),
                                  &body);
        break;
      }
      std::vector<NodeRef> results;
      ExecStats stats;
      Status run;
      {
        ReaderMutexLock gate(gate_);
        auto r = sdb_ != nullptr
                     ? sdb_->Query(req.index, req.xpath, &results)
                     : db_->Query(req.index, req.xpath, &results);
        run = r.ok() ? Status::OK() : r.status();
        if (r.ok()) stats = r.value();
      }
      if (!run.ok()) {
        wire::EncodeErrorResponse(wire::CodeFromStatus(run), run.message(),
                                  &body);
        break;
      }
      wire::QueryOutcome out;
      out.used_index = stats.used_index;
      out.degraded = stats.degraded;
      out.candidates = stats.candidates;
      out.result_count = stats.result_count;
      out.results.reserve(results.size());
      for (const NodeRef& r : results) {
        out.results.push_back(wire::WireNodeRef{r.doc_id, r.node_id});
      }
      span.AddAttr("results", static_cast<uint64_t>(out.results.size()));
      wire::EncodeQueryResponse(out, &body);
      break;
    }
    case wire::Op::kQueryBatch: {
      wire::QueryBatchRequest req;
      Status parsed = DecodeQueryBatchRequest(payload, &req);
      if (!parsed.ok()) {
        wire::EncodeErrorResponse(wire::Code::kBadRequest, parsed.message(),
                                  &body);
        break;
      }
      // The client's thread request is advisory; clamp so one request
      // cannot commandeer the host. ExecuteMany(threads=1) runs inline on
      // this worker with no internal pool.
      const int threads =
          std::clamp(static_cast<int>(req.threads), 1, 8);
      Result<std::vector<Database::BatchQueryOutcome>> batch =
          Status::Internal("unreached");
      {
        ReaderMutexLock gate(gate_);
        // The sharded path parallelizes per scatter leg through its own
        // pool; the advisory thread count only shapes the unsharded path.
        batch = sdb_ != nullptr
                    ? sdb_->ExecuteMany(req.index, req.xpaths)
                    : db_->ExecuteMany(req.index, req.xpaths, threads);
      }
      if (!batch.ok()) {
        wire::EncodeErrorResponse(wire::CodeFromStatus(batch.status()),
                                  batch.status().message(), &body);
        break;
      }
      std::vector<wire::QueryOutcome> outs;
      outs.reserve(batch.value().size());
      for (const Database::BatchQueryOutcome& b : batch.value()) {
        wire::QueryOutcome out;
        if (!b.status.ok()) {
          out.code = wire::CodeFromStatus(b.status);
          out.error = b.status.message();
        } else {
          out.used_index = b.stats.used_index;
          out.degraded = b.stats.degraded;
          out.candidates = b.stats.candidates;
          out.result_count = b.stats.result_count;
          out.results.reserve(b.results.size());
          for (const NodeRef& r : b.results) {
            out.results.push_back(wire::WireNodeRef{r.doc_id, r.node_id});
          }
        }
        outs.push_back(std::move(out));
      }
      span.AddAttr("queries", static_cast<uint64_t>(outs.size()));
      wire::EncodeQueryBatchResponse(outs, &body);
      break;
    }
    case wire::Op::kInsert: {
      wire::InsertRequest req;
      Status parsed = DecodeInsertRequest(payload, &req);
      if (!parsed.ok()) {
        wire::EncodeErrorResponse(wire::Code::kBadRequest, parsed.message(),
                                  &body);
        break;
      }
      wire::InsertResponse resp;
      Status run = Status::OK();
      if (sdb_ != nullptr) {
        // Sharded path: route + commit inside ShardedDatabase, which
        // gates only the target shard's readers — the server-wide gate_
        // stays untouched so queries on other shards never pause.
        MutexLock writer(writer_mu_);
        auto id = sdb_->InsertXml(req.index, req.xml);
        if (!id.ok()) {
          run = id.status();
        } else {
          resp.doc_id = id.value();
          resp.generation = sdb_->layout_generation();
        }
      } else {
        // One mutator at a time; the corpus mutation + save excludes
        // readers (gate_ exclusive), the index commit below does not.
        MutexLock writer(writer_mu_);
        {
          WriterMutexLock gate(gate_);
          auto id = db_->AddXml(req.xml);
          if (!id.ok()) {
            run = id.status();
          } else {
            resp.doc_id = id.value();
            // Persist the corpus before the index commits: a crash
            // between the two leaves the index stale (quarantined and
            // rebuilt on next open), never ahead of its documents.
            run = db_->Save();
          }
        }
        if (run.ok() && !req.index.empty()) {
          FixIndex* index = db_->index(req.index);
          if (index == nullptr) {
            run = Status::NotFound("unknown or degraded index '" +
                                   req.index + "'");
          } else {
            run = index->InsertDocument(resp.doc_id);
            if (run.ok()) resp.generation = index->generation();
          }
        }
      }
      if (!run.ok()) {
        wire::EncodeErrorResponse(wire::CodeFromStatus(run), run.message(),
                                  &body);
        break;
      }
      span.AddAttr("doc_id", static_cast<uint64_t>(resp.doc_id));
      wire::EncodeInsertResponse(resp, &body);
      break;
    }
    case wire::Op::kStats: {
      wire::StatsResponse resp;
      resp.prometheus_text = MetricsRegistry::Instance().PrometheusText();
      wire::EncodeStatsResponse(resp, &body);
      break;
    }
  }

  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  RequestLatency().Record(
      static_cast<uint64_t>(now_us - conn->request_start_us));
  span.AddAttr("code",
               std::string_view(wire::CodeName(static_cast<wire::Code>(
                   body.empty() ? 0 : static_cast<uint8_t>(body[0])))));
  QueueResponse(conn, type | wire::kResponseBit, body,
                /*completes_request=*/true);
}

void Server::QueueResponse(const std::shared_ptr<Conn>& conn, uint8_t type,
                           std::string_view payload, bool completes_request) {
  if (type != 0) {
    std::string framed;
    framed.reserve(wire::kHeaderSize + payload.size());
    wire::AppendFrame(type, payload, &framed);
    MutexLock lock(conn->mu_);
    conn->out += framed;
    conn->response_ready = true;
  }
  if (completes_request) {
    int remaining = inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    QueueDepth().Set(remaining);
  }
  Wake();
}

}  // namespace server
}  // namespace fix
