// fixd: the long-running FIX query server. One event-loop thread (epoll,
// or poll as fallback — see poller.h) owns every socket; a ThreadPool of
// workers executes requests against the Database's concurrent read path
// and WAL-backed write path. The wire protocol (common/wire.h) carries
// QUERY / QUERY_BATCH / INSERT / STATS / PING; connections whose first
// bytes look like HTTP instead get `GET /stats` (Prometheus text) and
// `GET /healthz`. docs/FIXD.md is the operations manual.
//
// Concurrency model:
//   * The loop thread is the only one that reads sockets, parses frames,
//     admits or sheds requests, and closes connections. Workers touch a
//     connection only through its output buffer (Conn::mu_, a rank-8 leaf
//     lock) and wake the loop through a self-pipe. A connection executes
//     at most one request at a time: the loop stops reading its socket
//     while a request is in flight, so TCP backpressure reaches the
//     client without any per-connection queue.
//   * Admission control is a bounded in-flight count (`max_inflight`):
//     past the bound, requests are answered immediately with the typed
//     kOverloaded wire error — shed, never silently dropped or queued
//     unboundedly.
//   * Reads (QUERY, QUERY_BATCH, STATS) take `gate_` shared and run
//     concurrently. INSERT serializes on `writer_mu_`, takes `gate_`
//     exclusively only around the corpus mutation + save (the
//     reader-excluding part of the Database contract), then commits the
//     index entries copy-on-write while queries keep running.
//     ReloadIndex (SIGHUP) also serializes on `writer_mu_`; the swap
//     itself is the zero-degraded-window RebuildIndex path, so readers
//     never notice.
//   * Graceful drain (BeginDrain, wired to SIGTERM/SIGINT by fixd_main):
//     the listener closes, in-flight requests finish and their responses
//     flush, fresh requests on surviving connections get kShuttingDown,
//     and WaitDrained returns once every connection is gone (WAL commits
//     are fsync'd per operation, so nothing further needs flushing). A
//     drain that exceeds drain_timeout_ms force-closes and reports it.
//
// Lock order (see docs/ARCHITECTURE.md): Server::writer_mu_ (1) →
// Server::gate_ (2) → everything inside ShardedDatabase (3–5) and
// Database (6+); Server::state_mu_ and Conn::mu_ are rank-11 leaves
// acquired with nothing else held below rank 12 (metrics).

#ifndef FIX_SERVER_FIXD_SERVER_H_
#define FIX_SERVER_FIXD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/net.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "core/index_options.h"
#include "core/sharded_database.h"
#include "server/poller.h"

namespace fix {
namespace server {

struct Conn;

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds a kernel-assigned ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Worker threads executing requests (>= 1).
  int workers = 4;
  /// Admission bound: requests in flight (admitted, response not yet
  /// queued) beyond this are shed with wire::Code::kOverloaded.
  int max_inflight = 128;
  /// Idle connections (no request in flight, nothing to write) are closed
  /// after this long without traffic. <= 0 disables the reap.
  int read_timeout_ms = 60'000;
  /// Connections whose pending response bytes make no progress for this
  /// long are force-closed. <= 0 disables.
  int write_timeout_ms = 10'000;
  /// BeginDrain force-closes whatever remains after this long.
  int drain_timeout_ms = 10'000;
  /// The serving index: ReloadIndex's target, and the index INSERT
  /// extends. Empty disables both.
  std::string index;
  /// Options ReloadIndex rebuilds with (match the original build).
  IndexOptions index_options;
  /// Use the poll(2) backend even where epoll is available (tests).
  bool force_poll = false;
  /// Test seam: runs in the worker before each admitted request executes
  /// (e.g. a latch that holds workers busy to force load-shedding).
  std::function<void(uint8_t op)> dispatch_hook_for_test;
};

class Server {
 public:
  /// `db` must outlive the server and must already be opened/populated.
  Server(Database* db, ServerOptions options);

  /// Sharded backend: requests scatter-gather across `sdb`'s shards
  /// instead of hitting one Database. INSERT routes by document hash and
  /// relies on ShardedDatabase's per-shard gating for reader exclusion
  /// (gate_ stays shared-free on this path); writer_mu_ still serializes
  /// mutators. `sdb` must outlive the server.
  Server(ShardedDatabase* sdb, ServerOptions options);

  /// Stops (drain + join) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, spawns the worker pool and the event loop.
  /// On success the server is reachable at host:port().
  [[nodiscard]] Status Start();

  /// The bound port (resolves option `port == 0` to the real one).
  /// @pre Start() succeeded.
  uint16_t port() const { return port_; }

  /// Begins a graceful drain: stop accepting, answer fresh requests with
  /// kShuttingDown, finish and flush in-flight ones. Safe from any thread
  /// (fixd_main calls it from the signal-wait thread); idempotent.
  void BeginDrain();

  /// Blocks until the event loop exits, then joins it and the workers.
  /// @return OK on a clean drain; Internal if the drain deadline forced
  ///         connections closed; the loop's error if it died unexpectedly.
  [[nodiscard]] Status WaitDrained();

  /// BeginDrain + WaitDrained.
  [[nodiscard]] Status Stop() {
    BeginDrain();
    return WaitDrained();
  }

  /// Rebuilds the serving index from the live corpus and hot-swaps it
  /// (Database::RebuildIndex: zero degraded window, readers keep the old
  /// handle until they finish). Serialized against INSERTs. Blocks for
  /// the build; fixd_main calls it on SIGHUP.
  /// @return NotSupported when options.index is empty, else the rebuild's
  ///         status.
  [[nodiscard]] Status ReloadIndex() FIX_EXCLUDES(writer_mu_);

  /// Live in-flight count (admitted, not yet answered). Test/metrics aid.
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }

 private:
  void LoopThread();
  [[nodiscard]] Status LoopBody();

  /// Accepts every pending connection on the listener.
  void AcceptAll();

  /// Reads, sniffs (wire vs HTTP), frames, and dispatches one connection's
  /// readable event.
  void OnReadable(const std::shared_ptr<Conn>& conn);

  /// Dispatches frames already buffered in the connection's FrameReader.
  /// Called after every Feed and again when a response completes — a
  /// pipelining client's next frame is likely already buffered, and no
  /// further socket readability would announce it.
  void ProcessFrames(const std::shared_ptr<Conn>& conn);

  /// Flushes as much pending output as the socket accepts.
  void OnWritable(const std::shared_ptr<Conn>& conn);

  /// Admission control + worker handoff for one decoded frame.
  void Dispatch(const std::shared_ptr<Conn>& conn, uint8_t type,
                std::string payload);

  /// Executes one admitted request on a worker thread.
  void Execute(const std::shared_ptr<Conn>& conn, uint8_t type,
               const std::string& payload);

  /// Serves one parsed HTTP request (loop thread; the bodies are cheap).
  void ServeHttp(const std::shared_ptr<Conn>& conn,
                 const std::string& head);

  /// Appends a response frame to the connection's output buffer and wakes
  /// the loop. `completes_request` releases the in-flight slot.
  void QueueResponse(const std::shared_ptr<Conn>& conn, uint8_t type,
                     std::string_view payload, bool completes_request);

  void CloseConn(int fd);

  /// Writes one byte to the self-pipe so a blocked Wait returns.
  void Wake();

  // Exactly one backend is non-null: a monolithic Database or a
  // ShardedDatabase (fixd_main picks by layout auto-detection).
  Database* const db_;
  ShardedDatabase* const sdb_;
  const ServerOptions options_;

  // Serializes mutators (INSERT, ReloadIndex) against each other; always
  // acquired before gate_ and before any Database call.
  // LOCK-ORDER: 1 Server::writer_mu_
  Mutex writer_mu_;
  // Readers (queries, stats) hold it shared; INSERT holds it exclusive
  // around the reader-excluding corpus mutation only.
  // LOCK-ORDER: 2 Server::gate_
  SharedMutex gate_;

  // Lifecycle handshake between Start/WaitDrained and the loop thread.
  // LOCK-ORDER: 11 Server::state_mu_
  Mutex state_mu_;
  CondVar state_cv_;
  bool loop_exited_ FIX_GUARDED_BY(state_mu_) = false;
  Status loop_status_ FIX_GUARDED_BY(state_mu_);

  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<int> inflight_{0};

  net::Fd listener_;
  net::Fd wake_read_;
  net::Fd wake_write_;
  uint16_t port_ = 0;

  std::unique_ptr<Poller> poller_;          // loop thread only after Start
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  // loop thread only
  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_;
};

}  // namespace server
}  // namespace fix

#endif  // FIX_SERVER_FIXD_SERVER_H_
