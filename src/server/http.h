// Minimal HTTP/1.1 support for fixd's observability endpoints: just
// enough to answer `GET /stats` (Prometheus text) and `GET /healthz`
// from a scrape loop or a shell one-liner. This is deliberately not a
// general HTTP server — one request per connection, no keep-alive, no
// chunked bodies, request heads capped at kMaxRequestBytes.
//
// Thread-safety: free pure functions.

#ifndef FIX_SERVER_HTTP_H_
#define FIX_SERVER_HTTP_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace fix {
namespace server {
namespace http {

/// Request heads larger than this are answered 431 and closed (a scrape
/// request line is tens of bytes; anything bigger is not a scraper).
inline constexpr size_t kMaxRequestBytes = 8 * 1024;

/// True when the first bytes of a connection look like an HTTP request
/// rather than a wire-protocol frame ("GET ", "HEAD", "POST", ...). Needs
/// at least 4 buffered bytes to decide; shorter prefixes return false.
bool LooksLikeHttp(std::string_view prefix);

/// True once `buf` holds a complete request head (terminating CRLFCRLF).
bool HasFullRequest(std::string_view buf);

struct Request {
  std::string method;  ///< "GET", "HEAD", ...
  std::string target;  ///< "/stats", "/healthz", ...
};

/// Parses the request line out of a complete head. Headers are skipped:
/// the endpoints served here depend on none of them.
[[nodiscard]] Status ParseRequest(std::string_view head, Request* request);

/// Serializes a complete response (status line, minimal headers,
/// Connection: close, body). `reason` must match `status_code`.
std::string MakeResponse(int status_code, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body);

}  // namespace http
}  // namespace server
}  // namespace fix

#endif  // FIX_SERVER_HTTP_H_
