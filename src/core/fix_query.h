// FixQueryProcessor: Algorithm 2 end to end — index lookup (pruning phase)
// followed by navigational refinement of every candidate, with the
// implementation-independent counters of Section 6.2 collected along the
// way.

#ifndef FIX_CORE_FIX_QUERY_H_
#define FIX_CORE_FIX_QUERY_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "query/twig_query.h"

namespace fix {

/// How candidates are refined.
enum class RefineMode {
  /// Evaluate each candidate separately; produces exact per-entry `rst`
  /// (needed by the Section 6.2 metrics) at the cost of re-walking
  /// overlapping candidate subtrees.
  kPerCandidate,
  /// Seed one navigational pass with the whole candidate set (the paper's
  /// architecture: pruned input feeds one NoK pass). Fastest; `producing`
  /// is not attributed (producing_valid = false).
  kBatch,
};

struct ExecStats {
  uint64_t total_entries = 0;   ///< ent: all index entries
  uint64_t candidates = 0;      ///< cdt: entries surviving the index probe
  uint64_t producing = 0;       ///< rst: candidates yielding >= 1 result
  bool producing_valid = true;  ///< false under RefineMode::kBatch
  uint64_t result_count = 0;    ///< result-step bindings (deduplicated when
                                ///< evaluation runs on primary documents)
  bool covered = true;          ///< query depth within the index limit
  bool used_index = true;       ///< false on full-scan fallback
  bool degraded = false;        ///< full scan forced by index corruption
                                ///< (quarantine), not by query depth
  double lookup_ms = 0;         ///< pruning phase wall time
  double refine_ms = 0;         ///< refinement phase wall time
  uint64_t entries_scanned = 0; ///< B+-tree entries touched
  uint64_t nodes_visited = 0;   ///< matcher work during refinement
  uint64_t random_reads = 0;    ///< primary-storage pointer dereferences
  uint64_t sequential_bytes = 0;///< clustered-store bytes read

  double selectivity() const {
    return total_entries == 0
               ? 0
               : 1.0 - static_cast<double>(producing) / total_entries;
  }
  double pruning_power() const {
    return total_entries == 0
               ? 0
               : 1.0 - static_cast<double>(candidates) / total_entries;
  }
  double false_positive_ratio() const {
    return candidates == 0
               ? 0
               : 1.0 - static_cast<double>(producing) / candidates;
  }
};

/// Folds one finished execution's ExecStats into the process-wide
/// MetricsRegistry (fix.query.* counters and latency histograms; see
/// docs/OBSERVABILITY.md). Called automatically by FixQueryProcessor and
/// FullScanExecute; exposed so alternative drivers can keep the registry
/// honest.
void RecordExecStats(const ExecStats& stats);

/// Evaluates `query` with the navigational matcher over every document —
/// the always-correct baseline path. Shared by FixQueryProcessor (queries
/// the index does not cover) and Database (graceful degradation when an
/// index is quarantined as corrupt). `total_entries` is only bookkeeping
/// for the pruning-power stats; pass 0 when no index exists.
///
/// `pool` (optional) fans the per-document matching out over a ThreadPool;
/// results and stats are merged in document order, so the output is
/// byte-identical to the sequential scan. `seed` (optional) carries
/// lookup-side stats (lookup_ms, entries_scanned) measured before the
/// caller decided to fall back — without it uncovered queries would report
/// zero lookup cost.
[[nodiscard]] Result<ExecStats> FullScanExecute(Corpus* corpus,
                                                const TwigQuery& query,
                                                std::vector<NodeRef>* results,
                                                uint64_t total_entries,
                                                ThreadPool* pool = nullptr,
                                                const ExecStats* seed = nullptr);

/// Thread-safety: distinct FixQueryProcessor instances over the same
/// (corpus, index) pair may Execute concurrently — the processor itself is
/// stateless between calls, and the index's concurrent-read contract
/// (fix_index.h) covers the shared state. A single instance must not be
/// shared across threads only because Execute is not reentrant with respect
/// to the caller's `results` vector.
class FixQueryProcessor {
 public:
  /// `pool` (optional, caller-owned, may be null) parallelizes candidate
  /// refinement across per-document work units. With a null or single-thread
  /// pool the exact sequential code path runs; with N threads the merged
  /// results are byte-identical to the sequential order (candidate groups
  /// are disjoint per document and merged in ascending doc id).
  FixQueryProcessor(Corpus* corpus, FixIndex* index, ThreadPool* pool = nullptr)
      : corpus_(corpus), index_(index), pool_(pool) {}

  /// Runs the full query. `results` (optional) receives the deduplicated
  /// result-step bindings; it is filled only when refinement runs against
  /// primary documents (unclustered or whole-document candidates) — for
  /// clustered subtree copies only counts are meaningful. Clustered
  /// indexes always refine per candidate (each subtree copy is its own
  /// little document).
  [[nodiscard]] Result<ExecStats> Execute(const TwigQuery& query,
                            std::vector<NodeRef>* results = nullptr,
                            RefineMode mode = RefineMode::kPerCandidate);

 private:
  /// Refinement output of one per-document candidate group.
  struct GroupOutcome {
    Status status;
    std::vector<NodeRef> results;
    uint64_t nodes_visited = 0;
    uint64_t producing = 0;
    uint64_t result_count = 0;
    uint64_t random_reads = 0;
    uint64_t sequential_bytes = 0;
  };

  [[nodiscard]] Status RefineCandidates(const TwigQuery& query,
                          const std::vector<FixIndex::Candidate>& candidates,
                          RefineMode mode, ExecStats* stats,
                          std::vector<NodeRef>* results);

  /// Refines the candidate group sorted[begin, end) — all of one document —
  /// into `out`. Runs on pool workers; touches only read-shared index state
  /// and `out`.
  void RefineDocGroup(const TwigQuery& query,
                      const std::vector<FixIndex::Candidate>& sorted,
                      size_t begin, size_t end, RefineMode mode, bool rooted,
                      GroupOutcome* out);

  [[nodiscard]] Result<ExecStats> FullScan(const TwigQuery& query,
                             std::vector<NodeRef>* results,
                             const ExecStats* seed);

  Corpus* corpus_;
  FixIndex* index_;
  ThreadPool* pool_;
};

}  // namespace fix

#endif  // FIX_CORE_FIX_QUERY_H_
