// Corpus: the database instance — a collection of XML documents, their
// shared label table, and the primary on-disk storage (Figure 3's "primary
// storage" box).
//
// Documents are kept in memory for navigation (the refinement engine is a
// NoK-style in-memory navigational operator) and mirrored to an append-only
// record store on disk; unclustered index values are NodeRefs whose
// resolution is charged as one random primary-storage read.

#ifndef FIX_CORE_CORPUS_H_
#define FIX_CORE_CORPUS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/record_store.h"
#include "xml/document.h"
#include "xml/label_table.h"

namespace fix {

class Corpus {
 public:
  Corpus() = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  LabelTable* labels() { return &labels_; }
  const LabelTable& labels() const { return labels_; }

  /// Adds a document; returns its doc id.
  uint32_t AddDocument(Document doc) {
    docs_.push_back(std::move(doc));
    return static_cast<uint32_t>(docs_.size() - 1);
  }

  /// Parses XML text and adds the document.
  [[nodiscard]] Result<uint32_t> AddXml(std::string_view xml);

  const Document& doc(uint32_t id) const { return docs_[id]; }
  size_t num_docs() const { return docs_.size(); }

  /// Writes every document (encoded) to a record store at `path`. Must be
  /// called after all documents are added and before unclustered-index
  /// refinement wants I/O accounting.
  [[nodiscard]] Status WritePrimaryStorage(const std::string& path);

  /// Charges one random read of document `id` against the primary store
  /// (refinement-time I/O for unclustered candidates). No-op if the primary
  /// store was never written.
  [[nodiscard]] Status TouchPrimary(uint32_t id) const;

  bool has_primary() const { return primary_.is_open(); }
  const RecordStore& primary() const { return primary_; }
  RecordStore* mutable_primary() { return &primary_; }

  /// Total elements across all documents.
  size_t TotalElements() const;

  /// Persists the whole corpus into `dir`: the label table (labels.dat),
  /// every document in the primary record store (primary.dat), and the
  /// manifest mapping doc ids to record offsets (manifest.dat). Writes the
  /// primary store if it was not written yet.
  [[nodiscard]] Status Save(const std::string& dir);

  /// Restores a corpus saved with Save(). Documents are decoded back into
  /// memory; the primary store stays open for refinement-time accounting.
  [[nodiscard]] static Result<Corpus> Load(const std::string& dir);

 private:
  LabelTable labels_;
  std::vector<Document> docs_;
  RecordStore primary_;
  std::vector<RecordId> primary_ids_;
};

}  // namespace fix

#endif  // FIX_CORE_CORPUS_H_
