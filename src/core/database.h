// Database: the one-stop public facade. Owns the corpus and any number of
// FIX indexes; parses XPath strings; routes queries through the best
// applicable index (or a full scan). This is the API the examples use.
//
// Thread-safety: the read path is concurrent. Query, ExecuteMany, Compile,
// IsDegraded, and health() may be called from any number of threads at once
// — compiled plans come from a lock-striped PlanCache, index handles are
// shared_ptrs looked up under a shared mutex (so a quarantine racing a
// query can never free an index mid-probe), and the layers below follow
// their own concurrent-read contracts (fix_index.h, btree.h,
// buffer_pool.h). Everything that changes the set of indexes or documents
// is writer-exclusive: Open, Save, Finalize, AddXml/AddDocument,
// BuildIndex, AttachIndex, RebuildIndex must not overlap with each other or
// with any read. Lock order (never acquire leftward while holding
// rightward): Database::mu_ → health_mu_ / compile_mu_ / PlanCache shard →
// FixIndex encoder mutex → BufferPool shard. See docs/ARCHITECTURE.md,
// "Concurrent reads".
//
// Observability: per-instance counters are served by health(); every event
// is also mirrored into the process-wide MetricsRegistry under the
// `fix.storage.*` / `fix.db.*` names (see docs/OBSERVABILITY.md).

#ifndef FIX_CORE_DATABASE_H_
#define FIX_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/index_options.h"
#include "core/metrics.h"
#include "query/plan_cache.h"

namespace fix {

class Database {
 public:
  struct OpenOptions {
    /// Audit every index at attach time (B+-tree structural walk + corpus
    /// consistency). Costs one full index read; disable only in tests that
    /// want to exercise the mid-query corruption path.
    bool verify_on_attach = true;
    /// Backend override for index page files (see
    /// IndexOptions::page_io_factory). Tests only.
    std::function<std::unique_ptr<PageIo>()> page_io_factory;
    /// Backend override for index write-ahead logs (see
    /// IndexOptions::wal_io_factory). Tests only.
    std::function<std::unique_ptr<PageIo>()> wal_io_factory;
  };

  /// @pre `workdir` (the directory holding the primary store and index
  /// files) exists.
  explicit Database(std::string workdir) : workdir_(std::move(workdir)) {}

  /// Releases every attached index (closing their files) and drops their
  /// contribution to the process-wide `fix.db.open_indexes` gauge.
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Recovery-aware opening of an existing database directory: restores the
  /// corpus (Corpus::Save layout) and attaches every `*.fix` index found.
  /// An index that fails to open, fails verification, or is stale (its meta
  /// covers fewer documents than the corpus holds — the signature of a
  /// crash mid-update) is quarantined: its files are renamed aside with a
  /// ".quarantined" suffix and queries naming it transparently fall back to
  /// the always-correct full scan (ExecStats::degraded is set). Answers are
  /// never wrong, only slower, and RebuildIndex() restores indexed speed.
  ///
  /// Returns a pointer (not a value): FixIndex handles keep raw pointers to
  /// the owning corpus, so the Database must never move after indexes
  /// attach.
  ///
  /// @pre `workdir` was populated by Save()/Finalize() (or fixctl).
  /// @post Every healthy `*.fix` index in the directory is attached;
  ///       damaged ones are renamed aside and marked degraded.
  /// @return The opened database, or NotFound/IOError when the corpus
  ///         itself cannot be restored (index damage never fails Open).
  [[nodiscard]] static Result<std::unique_ptr<Database>> Open(
      const std::string& workdir, OpenOptions options);
  [[nodiscard]] static Result<std::unique_ptr<Database>> Open(
      const std::string& workdir) {
    return Open(workdir, OpenOptions());
  }

  /// Persists the corpus into the workdir (Corpus::Save layout) so the
  /// database can later be reopened with Open().
  [[nodiscard]] Status Save() { return corpus_.Save(workdir_); }

  /// The owned corpus; never null, valid for the Database's lifetime.
  Corpus* corpus() { return &corpus_; }

  /// Parses and adds one XML document.
  /// @return The new document's id, or ParseError on malformed XML.
  [[nodiscard]] Result<uint32_t> AddXml(std::string_view xml) { return corpus_.AddXml(xml); }

  /// Adds an already-built document (generators use this).
  uint32_t AddDocument(Document doc) {
    return corpus_.AddDocument(std::move(doc));
  }

  /// Writes the primary record store. Call once after loading documents.
  [[nodiscard]] Status Finalize() {
    return corpus_.WritePrimaryStorage(workdir_ + "/primary.dat");
  }

  /// Builds a FIX index named `name` with the given options (options.path
  /// is derived from the name).
  /// @pre No attached index is already registered under `name`.
  /// @post On success the index is attached and queryable under `name`.
  /// @return A handle owned by the Database (valid until the index is
  ///         quarantined, rebuilt, or the Database dies), or the build
  ///         failure (InvalidArgument/IOError).
  [[nodiscard]] Result<FixIndex*> BuildIndex(const std::string& name, IndexOptions options,
                               BuildStats* stats = nullptr);

  /// The attached index registered under `name`, or nullptr (unknown name,
  /// or quarantined).
  FixIndex* index(const std::string& name);

  /// Reopens an index previously built (possibly by an earlier process)
  /// under this workdir and registers it under `name`.
  /// @return A Database-owned handle, or NotFound/Corruption from opening
  ///         the on-disk files (no quarantine happens on this path).
  [[nodiscard]] Result<FixIndex*> AttachIndex(const std::string& name);

  /// Builds index `name` afresh from the in-memory corpus and swaps it into
  /// place — the recovery path out of degraded mode, and an online rebuild
  /// when the index is healthy: the build happens at a side path
  /// (`<name>.fix.rebuild*`) while the old index, if attached, keeps
  /// answering queries; the swap is a rename + handle replacement with zero
  /// degraded window. In-flight queries holding the old handle finish
  /// against the old (unlinked) files.
  /// @post On success IsDegraded(name) is false and health().rebuilds has
  ///       been incremented.
  /// @return The fresh Database-owned handle, or the build failure (in
  ///         which case the old index — attached, degraded, or absent —
  ///         is left exactly as it was).
  [[nodiscard]] Result<FixIndex*> RebuildIndex(const std::string& name,
                                               IndexOptions options,
                                               BuildStats* stats = nullptr);

  /// True when queries naming `name` are being answered by full scan
  /// because the index was quarantined as corrupt or stale.
  bool IsDegraded(const std::string& name) const FIX_EXCLUDES(mu_) {
    ReaderMutexLock lock(mu_);
    return degraded_.count(name) > 0;
  }

  /// This instance's degradation/corruption counters, by value — a snapshot
  /// consistent under concurrent queries. Process-wide totals (across all
  /// databases) live in the MetricsRegistry as `fix.storage.*`; this is the
  /// per-database slice of the same events.
  StorageHealth health() const FIX_EXCLUDES(health_mu_) {
    MutexLock lock(health_mu_);
    return health_;
  }

  /// Parses an XPath string, resolves labels, and executes it through the
  /// named index. A degraded (quarantined) name is answered by full scan
  /// with ExecStats::degraded set; corruption surfacing mid-query
  /// quarantines the index and re-answers from the ground truth.
  /// @return The execution's stats, or ParseError (bad XPath) / NotFound
  ///         (unknown, non-degraded index name). Never returns Corruption:
  ///         damage degrades, it does not fail queries.
  [[nodiscard]] Result<ExecStats> Query(const std::string& index_name,
                          const std::string& xpath,
                          std::vector<NodeRef>* results = nullptr);

  /// One query's outcome within an ExecuteMany batch. `status` is per-query
  /// (a ParseError in one XPath does not fail its batchmates); stats and
  /// results are meaningful only when status.ok().
  struct BatchQueryOutcome {
    Status status;
    ExecStats stats;
    std::vector<NodeRef> results;
  };

  /// Executes a batch of XPath queries against the named index, fanning
  /// candidate refinement out over an internal ThreadPool of `threads`
  /// workers (0 = hardware concurrency; clamped to [1, 64]). Queries are
  /// compiled and issued in order; each one's refinement parallelizes over
  /// per-document work units, and the merged results are byte-identical to
  /// what `threads = 1` (or Query) produces — determinism is the contract,
  /// verified by test on all four datasets.
  ///
  /// @return one outcome per input XPath (same order), or NotFound when
  ///         `index_name` is neither attached nor degraded.
  [[nodiscard]] Result<std::vector<BatchQueryOutcome>> ExecuteMany(
      const std::string& index_name, const std::vector<std::string>& xpaths,
      int threads = 0);

  /// Executes an already-compiled twig against the named index — the
  /// scatter entry point ShardedDatabase uses so one plan compiled against
  /// the master label table fans out to every shard without recompiling.
  /// Same degradation semantics as Query; `pool` (optional, caller-owned)
  /// parallelizes candidate refinement. The twig's label ids must have
  /// been resolved against this database's label table or a table whose
  /// ids are a superset mirror of it (sharded_database.h explains why the
  /// mirror discipline makes that sound).
  [[nodiscard]] Result<ExecStats> ExecuteCompiled(const std::string& index_name,
                                                  const TwigQuery& q,
                                                  std::vector<NodeRef>* results = nullptr,
                                                  ThreadPool* pool = nullptr) {
    return QueryInternal(index_name, q, results, pool);
  }

  /// Parses + resolves an XPath string without executing (for harnesses).
  /// Serves repeated strings from the plan cache. Thread-safe.
  /// @return The compiled twig, or ParseError.
  [[nodiscard]] Result<TwigQuery> Compile(const std::string& xpath);

  /// Plan-cache statistics (hits/misses/evictions/entries).
  PlanCache::Stats plan_cache_stats() const { return plan_cache_.GetStats(); }

 private:
  std::string IndexPath(const std::string& name) const {
    return workdir_ + "/" + name + ".fix";
  }

  /// Attaches index `name`, or — on corruption, I/O failure, or staleness —
  /// quarantines it and records the degradation. Only unexpected statuses
  /// (e.g. InvalidArgument) propagate.
  [[nodiscard]] Status AttachOrQuarantine(const std::string& name);

  /// Renames the index files aside (".quarantined" suffix), drops any
  /// attached handle, and marks the name degraded. Idempotent: a second
  /// caller (e.g. two queries observing the same corruption concurrently)
  /// finds the name already degraded and returns without double-renaming.
  /// In-flight queries keep the index alive through their shared_ptr.
  void QuarantineIndex(const std::string& name, const Status& why)
      FIX_EXCLUDES(mu_, health_mu_);

  /// The shared execution path behind Query and ExecuteMany: `q` is already
  /// compiled; `pool` (may be null) parallelizes refinement.
  [[nodiscard]] Result<ExecStats> QueryInternal(const std::string& index_name,
                                                const TwigQuery& q,
                                                std::vector<NodeRef>* results,
                                                ThreadPool* pool);

  /// Looks up the attached index `name` under the shared lock; null when
  /// unknown or degraded.
  std::shared_ptr<FixIndex> SharedIndex(const std::string& name) const
      FIX_EXCLUDES(mu_);

  void BumpDegradedQuery() FIX_EXCLUDES(health_mu_);

  std::string workdir_;
  Corpus corpus_;
  /// Guards indexes_ and degraded_. Readers (Query/ExecuteMany/IsDegraded)
  /// take it shared only long enough to copy a shared_ptr; quarantine and
  /// the writer-exclusive index mutations take it unique.
  // LOCK-ORDER: 6 Database::mu_
  mutable SharedMutex mu_;
  /// shared_ptr, not unique_ptr: a query holds its own reference while
  /// executing, so quarantine (which detaches the index) can never free it
  /// under a concurrent reader.
  std::vector<std::pair<std::string, std::shared_ptr<FixIndex>>> indexes_
      FIX_GUARDED_BY(mu_);
  OpenOptions open_options_;
  std::unordered_set<std::string> degraded_ FIX_GUARDED_BY(mu_);
  /// Guards health_ (kept a plain copyable struct; mutations are rare).
  // LOCK-ORDER: 7 Database::health_mu_
  mutable Mutex health_mu_ FIX_ACQUIRED_AFTER(mu_);
  StorageHealth health_ FIX_GUARDED_BY(health_mu_);
  /// Serializes compilation misses: ResolveLabels interns into the shared
  /// LabelTable, which is not itself thread-safe.
  // LOCK-ORDER: 7 Database::compile_mu_
  Mutex compile_mu_ FIX_ACQUIRED_AFTER(mu_);
  mutable PlanCache plan_cache_;
};

}  // namespace fix

#endif  // FIX_CORE_DATABASE_H_
