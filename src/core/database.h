// Database: the one-stop public facade. Owns the corpus and any number of
// FIX indexes; parses XPath strings; routes queries through the best
// applicable index (or a full scan). This is the API the examples use.

#ifndef FIX_CORE_DATABASE_H_
#define FIX_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/index_options.h"

namespace fix {

class Database {
 public:
  /// `workdir` holds the primary store and index files; it must exist.
  explicit Database(std::string workdir) : workdir_(std::move(workdir)) {}

  Corpus* corpus() { return &corpus_; }

  /// Parses and adds one XML document. Returns its doc id.
  [[nodiscard]] Result<uint32_t> AddXml(std::string_view xml) { return corpus_.AddXml(xml); }

  /// Adds an already-built document (generators use this).
  uint32_t AddDocument(Document doc) {
    return corpus_.AddDocument(std::move(doc));
  }

  /// Writes the primary record store. Call once after loading documents.
  [[nodiscard]] Status Finalize() {
    return corpus_.WritePrimaryStorage(workdir_ + "/primary.dat");
  }

  /// Builds a FIX index named `name` with the given options (options.path
  /// is derived from the name). Returns the index handle; the Database
  /// retains ownership.
  [[nodiscard]] Result<FixIndex*> BuildIndex(const std::string& name, IndexOptions options,
                               BuildStats* stats = nullptr);

  FixIndex* index(const std::string& name);

  /// Reopens an index previously built (possibly by an earlier process)
  /// under this workdir and registers it under `name`.
  [[nodiscard]] Result<FixIndex*> AttachIndex(const std::string& name);

  /// Parses an XPath string, resolves labels, and executes it through the
  /// named index.
  [[nodiscard]] Result<ExecStats> Query(const std::string& index_name,
                          const std::string& xpath,
                          std::vector<NodeRef>* results = nullptr);

  /// Parses + resolves an XPath string without executing (for harnesses).
  [[nodiscard]] Result<TwigQuery> Compile(const std::string& xpath);

 private:
  std::string workdir_;
  Corpus corpus_;
  std::vector<std::pair<std::string, std::unique_ptr<FixIndex>>> indexes_;
};

}  // namespace fix

#endif  // FIX_CORE_DATABASE_H_
