// FeatureKey: the paper's index key — {root label, λ_max, λ_min}
// (Section 3.4) plus the optional λ₂ extension feature and a uniquifying
// sequence number.
//
// Encoded layout (32 bytes, memcmp-ordered):
//   [root_label BE u32][ord(λ_max) BE u64][ord(λ_min) BE u64]
//   [ord(λ₂) BE u64][seq BE u32]
// where ord() is the order-preserving IEEE-754→u64 map. The primary sort is
// (label, λ_max), which is what the containment probe scans on: a query
// range [λ_min(q), λ_max(q)] is contained in every indexed range with the
// same root label, λ_max ≥ λ_max(q) − ε and λ_min ≤ λ_min(q) + ε
// (Theorem 3; ε absorbs eigensolver round-off, Section 3.3).

#ifndef FIX_CORE_FEATURE_H_
#define FIX_CORE_FEATURE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/bytes.h"
#include "graph/bisim_graph.h"
#include "xml/document.h"
#include "xml/label_table.h"

namespace fix {

inline constexpr uint32_t kFeatureKeySize = 32;
inline constexpr uint32_t kIndexValueSize = 16;

struct FeatureKey {
  LabelId root_label = kInvalidLabel;
  double lambda_max = 0;
  double lambda_min = 0;
  double lambda2 = 0;  ///< second-largest eigenvalue magnitude (extension)
  uint32_t seq = 0;    ///< uniquifier assigned at insert time

  /// The artificial "always a candidate" key for oversized patterns
  /// (Section 6.1): range [-inf, +inf] contains every query range.
  static FeatureKey Oversized(LabelId root_label) {
    FeatureKey k;
    k.root_label = root_label;
    k.lambda_max = std::numeric_limits<double>::infinity();
    k.lambda_min = -std::numeric_limits<double>::infinity();
    k.lambda2 = std::numeric_limits<double>::infinity();
    return k;
  }
};

inline std::string EncodeFeatureKey(const FeatureKey& key) {
  std::string out(kFeatureKeySize, '\0');
  EncodeBigEndian32(out.data(), key.root_label);
  EncodeBigEndian64(out.data() + 4, OrderPreservingDouble(key.lambda_max));
  EncodeBigEndian64(out.data() + 12, OrderPreservingDouble(key.lambda_min));
  EncodeBigEndian64(out.data() + 20, OrderPreservingDouble(key.lambda2));
  EncodeBigEndian32(out.data() + 28, key.seq);
  return out;
}

inline FeatureKey DecodeFeatureKey(std::string_view buf) {
  FeatureKey key;
  key.root_label = DecodeBigEndian32(buf.data());
  key.lambda_max = OrderPreservingToDouble(DecodeBigEndian64(buf.data() + 4));
  key.lambda_min = OrderPreservingToDouble(DecodeBigEndian64(buf.data() + 12));
  key.lambda2 = OrderPreservingToDouble(DecodeBigEndian64(buf.data() + 20));
  key.seq = DecodeBigEndian32(buf.data() + 28);
  return key;
}

/// Index entry value: the NodeRef into primary storage (always present),
/// plus — for clustered indexes — the record offset of the subtree copy in
/// the clustered store.
struct IndexValue {
  NodeRef ref;
  uint64_t clustered_offset = 0;
};

inline std::string EncodeIndexValue(const IndexValue& v) {
  std::string out(kIndexValueSize, '\0');
  EncodeFixed32(out.data(), v.ref.doc_id);
  EncodeFixed32(out.data() + 4, v.ref.node_id);
  EncodeFixed64(out.data() + 8, v.clustered_offset);
  return out;
}

inline IndexValue DecodeIndexValue(std::string_view buf) {
  IndexValue v;
  v.ref = NodeRef{DecodeFixed32(buf.data()), DecodeFixed32(buf.data() + 4)};
  v.clustered_offset = DecodeFixed64(buf.data() + 8);
  return v;
}

}  // namespace fix

#endif  // FIX_CORE_FEATURE_H_
