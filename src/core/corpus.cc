#include "core/corpus.h"

#include "core/persist.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace fix {

Result<uint32_t> Corpus::AddXml(std::string_view xml) {
  Document doc;
  FIX_ASSIGN_OR_RETURN(doc, ParseXml(xml, &labels_));
  return AddDocument(std::move(doc));
}

Status Corpus::WritePrimaryStorage(const std::string& path) {
  FIX_RETURN_IF_ERROR(primary_.Open(path, /*create=*/true));
  primary_ids_.clear();
  primary_ids_.reserve(docs_.size());
  for (const Document& doc : docs_) {
    std::string buf;
    EncodeDocument(doc, &buf);
    RecordId id;
    FIX_ASSIGN_OR_RETURN(id, primary_.Append(buf));
    primary_ids_.push_back(id);
  }
  return primary_.Sync();
}

Status Corpus::TouchPrimary(uint32_t id) const {
  if (!primary_.is_open() || id >= primary_ids_.size()) return Status::OK();
  // Read only the record header: resolving a pointer is one random I/O
  // regardless of payload size (NoK-style storage navigates in place).
  return primary_.Touch(primary_ids_[id]);
}

size_t Corpus::TotalElements() const {
  size_t n = 0;
  for (const Document& d : docs_) n += d.CountElements();
  return n;
}

Status Corpus::Save(const std::string& dir) {
  if (!primary_.is_open()) {
    FIX_RETURN_IF_ERROR(WritePrimaryStorage(dir + "/primary.dat"));
  } else if (primary_ids_.size() < docs_.size()) {
    // Documents appended since the corpus was loaded (or last saved) have
    // no records yet; append them before rewriting the manifest, or they
    // would silently vanish on the next Load. Records are synced before the
    // manifest that references them is written, so a crash in between
    // leaves at worst unreferenced (harmless) trailing records.
    for (size_t i = primary_ids_.size(); i < docs_.size(); ++i) {
      std::string buf;
      EncodeDocument(docs_[i], &buf);
      RecordId id;
      FIX_ASSIGN_OR_RETURN(id, primary_.Append(buf));
      primary_ids_.push_back(id);
    }
    FIX_RETURN_IF_ERROR(primary_.Sync());
  }
  FIX_RETURN_IF_ERROR(
      WriteFile(dir + "/labels.dat", EncodeLabelTable(labels_)));
  return WriteFile(dir + "/manifest.dat", EncodeManifest(primary_ids_));
}

Result<Corpus> Corpus::Load(const std::string& dir) {
  Corpus corpus;
  std::string labels_buf;
  FIX_ASSIGN_OR_RETURN(labels_buf, ReadFile(dir + "/labels.dat"));
  FIX_RETURN_IF_ERROR(DecodeLabelTable(labels_buf, &corpus.labels_));

  FIX_RETURN_IF_ERROR(
      corpus.primary_.Open(dir + "/primary.dat", /*create=*/false));
  std::string manifest_buf;
  FIX_ASSIGN_OR_RETURN(manifest_buf, ReadFile(dir + "/manifest.dat"));
  FIX_ASSIGN_OR_RETURN(corpus.primary_ids_, DecodeManifest(manifest_buf));

  corpus.docs_.reserve(corpus.primary_ids_.size());
  for (const RecordId& id : corpus.primary_ids_) {
    std::string record;
    FIX_ASSIGN_OR_RETURN(record, corpus.primary_.Read(id));
    Document doc;
    FIX_ASSIGN_OR_RETURN(doc, DecodeDocument(record));
    corpus.docs_.push_back(std::move(doc));
  }
  corpus.primary_.ResetCounters();  // loading reads are not query I/O
  return corpus;
}

}  // namespace fix
