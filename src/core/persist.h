// Persistence for the pieces an index needs beyond its B+-tree pages:
// the shared label table, the corpus manifest (document record offsets in
// primary storage), and the index metadata sidecar (options, edge-weight
// encoding, sequence counter).
//
// Formats are little binary files with a magic + version header and varint
// payloads; every reader validates and returns Corruption on mismatch.

#ifndef FIX_CORE_PERSIST_H_
#define FIX_CORE_PERSIST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/index_options.h"
#include "spectral/edge_encoder.h"
#include "storage/record_store.h"
#include "xml/label_table.h"

namespace fix {

/// Reads/writes a whole small file.
[[nodiscard]] Status WriteFile(const std::string& path, const std::string& contents);
[[nodiscard]] Result<std::string> ReadFile(const std::string& path);

// --- label table ----------------------------------------------------------

/// Serializes all labels (including the implicit document label at id 0).
std::string EncodeLabelTable(const LabelTable& labels);

/// Restores labels into a fresh table; ids are preserved exactly.
[[nodiscard]] Status DecodeLabelTable(const std::string& buf, LabelTable* labels);

// --- corpus manifest --------------------------------------------------------

/// The record ids of each document in primary storage, in doc-id order.
std::string EncodeManifest(const std::vector<RecordId>& records);
[[nodiscard]] Result<std::vector<RecordId>> DecodeManifest(const std::string& buf);

// --- index metadata ---------------------------------------------------------

/// indexed_docs value meaning "written by a pre-v2 meta, count unknown":
/// consistency checks against the corpus are skipped for such indexes.
inline constexpr uint32_t kIndexedDocsUnknown = UINT32_MAX;

struct IndexMeta {
  IndexOptions options;  ///< path field is not persisted (caller supplies)
  uint32_t next_seq = 0;
  std::vector<std::pair<uint64_t, uint32_t>> edge_weights;
  /// Page-file format the index was written with (kPageFormatVersion);
  /// 0 for metas predating the checksummed page format.
  uint32_t storage_format = 1;
  /// Number of corpus documents the index covered when the sidecar was
  /// written. Database::Open compares this against the corpus to detect a
  /// stale index — one that survived a crash internally consistent but
  /// missing updates (wrong answers that no checksum can catch).
  uint32_t indexed_docs = kIndexedDocsUnknown;
  /// v3: the B+-tree generation the sidecar was written against, and the
  /// WAL's intact length (bytes) at that moment. Diagnostic cross-checks
  /// for fixdb_scrub --wal / fixctl wal; recovery itself trusts only the
  /// data file's meta page and the log (the sidecar may be a crash behind,
  /// which is exactly why the WAL commit record carries the app state).
  uint64_t generation = 0;
  uint64_t wal_bytes = 0;
  // v4 appends options.probe_engine (pre-v4 metas decode to kAuto).
};

std::string EncodeIndexMeta(const IndexMeta& meta);
[[nodiscard]] Result<IndexMeta> DecodeIndexMeta(const std::string& buf);

}  // namespace fix

#endif  // FIX_CORE_PERSIST_H_
