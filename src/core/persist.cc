#include "core/persist.h"

#include <cstdio>

#include "common/bytes.h"

namespace fix {

namespace {
constexpr uint32_t kLabelMagic = 0x4649584c;  // "FIXL"
constexpr uint32_t kManifestMagic = 0x4649584d;  // "FIXM"
constexpr uint32_t kMetaMagic = 0x46495849;  // "FIXI"
constexpr uint32_t kVersion = 1;
// Index-meta format: v2 appends storage_format + indexed_docs, v3 appends
// generation + wal_bytes, v4 appends probe_engine (see IndexMeta). Older
// sidecars remain readable; fields they predate decode to their "unknown"
// defaults.
constexpr uint32_t kMetaVersion = 4;

void PutHeader(std::string* out, uint32_t magic, uint32_t version = kVersion) {
  PutFixed32(out, magic);
  PutFixed32(out, version);
}

Status CheckHeader(const std::string& buf, size_t* pos, uint32_t magic,
                   const char* what, uint32_t max_version = kVersion,
                   uint32_t* version_out = nullptr) {
  if (buf.size() < 8 || DecodeFixed32(buf.data()) != magic) {
    return Status::Corruption(std::string("bad magic in ") + what);
  }
  uint32_t version = DecodeFixed32(buf.data() + 4);
  if (version == 0 || version > max_version) {
    return Status::Corruption(std::string("unsupported version in ") + what);
  }
  if (version_out != nullptr) *version_out = version;
  *pos = 8;
  return Status::OK();
}

}  // namespace

Status WriteFile(const std::string& path, const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int rc = std::fclose(f);
  if (written != contents.size() || rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read failed for " + path);
  return out;
}

// --- label table -----------------------------------------------------------

std::string EncodeLabelTable(const LabelTable& labels) {
  std::string out;
  PutHeader(&out, kLabelMagic);
  PutVarint32(&out, static_cast<uint32_t>(labels.size()));
  for (LabelId id = 0; id < labels.size(); ++id) {
    const std::string& name = labels.Name(id);
    PutVarint32(&out, static_cast<uint32_t>(name.size()));
    out += name;
  }
  return out;
}

Status DecodeLabelTable(const std::string& buf, LabelTable* labels) {
  size_t pos = 0;
  FIX_RETURN_IF_ERROR(CheckHeader(buf, &pos, kLabelMagic, "label table"));
  uint32_t count = 0;
  if (!GetVarint32(buf, &pos, &count)) {
    return Status::Corruption("label table: truncated count");
  }
  if (labels->size() != 1) {
    return Status::InvalidArgument(
        "label table must be fresh before decoding");
  }
  for (uint32_t id = 0; id < count; ++id) {
    uint32_t len = 0;
    if (!GetVarint32(buf, &pos, &len) || pos + len > buf.size()) {
      return Status::Corruption("label table: truncated name");
    }
    std::string name = buf.substr(pos, len);
    pos += len;
    if (id == 0) {
      if (name != kDocumentLabel) {
        return Status::Corruption("label table: id 0 is not #doc");
      }
      continue;  // the constructor already interned it
    }
    LabelId assigned = labels->Intern(name);
    if (assigned != id) {
      return Status::Corruption("label table: id mismatch for " + name);
    }
  }
  if (pos != buf.size()) {
    return Status::Corruption("label table: trailing bytes");
  }
  return Status::OK();
}

// --- manifest ----------------------------------------------------------------

std::string EncodeManifest(const std::vector<RecordId>& records) {
  std::string out;
  PutHeader(&out, kManifestMagic);
  PutVarint32(&out, static_cast<uint32_t>(records.size()));
  for (const RecordId& id : records) PutVarint64(&out, id.offset);
  return out;
}

Result<std::vector<RecordId>> DecodeManifest(const std::string& buf) {
  size_t pos = 0;
  FIX_RETURN_IF_ERROR(CheckHeader(buf, &pos, kManifestMagic, "manifest"));
  uint32_t count = 0;
  if (!GetVarint32(buf, &pos, &count)) {
    return Status::Corruption("manifest: truncated count");
  }
  std::vector<RecordId> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t offset = 0;
    if (!GetVarint64(buf, &pos, &offset)) {
      return Status::Corruption("manifest: truncated offset");
    }
    out.push_back(RecordId{offset});
  }
  if (pos != buf.size()) return Status::Corruption("manifest: trailing bytes");
  return out;
}

// --- index metadata -----------------------------------------------------------

std::string EncodeIndexMeta(const IndexMeta& meta) {
  std::string out;
  PutHeader(&out, kMetaMagic, kMetaVersion);
  const IndexOptions& o = meta.options;
  PutVarint32(&out, static_cast<uint32_t>(o.depth_limit));
  PutVarint32(&out, o.clustered ? 1 : 0);
  PutVarint32(&out, o.value_beta);
  PutVarint32(&out, o.use_lambda2 ? 1 : 0);
  PutVarint32(&out, o.sound_probe ? 1 : 0);
  PutFixed64(&out, OrderPreservingDouble(o.epsilon));
  PutVarint64(&out, o.max_pattern_vertices);
  PutVarint64(&out, o.max_expanded_nodes);
  PutVarint32(&out, meta.next_seq);
  PutVarint32(&out, static_cast<uint32_t>(meta.edge_weights.size()));
  for (const auto& [pair, weight] : meta.edge_weights) {
    PutVarint64(&out, pair);
    PutVarint32(&out, weight);
  }
  // v2 fields.
  PutVarint32(&out, meta.storage_format);
  PutVarint32(&out, meta.indexed_docs);
  // v3 fields.
  PutVarint64(&out, meta.generation);
  PutVarint64(&out, meta.wal_bytes);
  // v4 fields.
  PutVarint32(&out, static_cast<uint32_t>(o.probe_engine));
  return out;
}

Result<IndexMeta> DecodeIndexMeta(const std::string& buf) {
  size_t pos = 0;
  uint32_t version = 0;
  FIX_RETURN_IF_ERROR(
      CheckHeader(buf, &pos, kMetaMagic, "index meta", kMetaVersion, &version));
  IndexMeta meta;
  uint32_t depth = 0, clustered = 0, beta = 0, l2 = 0, sound = 0;
  if (!GetVarint32(buf, &pos, &depth) || !GetVarint32(buf, &pos, &clustered) ||
      !GetVarint32(buf, &pos, &beta) || !GetVarint32(buf, &pos, &l2) ||
      !GetVarint32(buf, &pos, &sound)) {
    return Status::Corruption("index meta: truncated options");
  }
  meta.options.depth_limit = static_cast<int>(depth);
  meta.options.clustered = clustered != 0;
  meta.options.value_beta = beta;
  meta.options.use_lambda2 = l2 != 0;
  meta.options.sound_probe = sound != 0;
  if (pos + 8 > buf.size()) {
    return Status::Corruption("index meta: truncated epsilon");
  }
  meta.options.epsilon =
      OrderPreservingToDouble(DecodeFixed64(buf.data() + pos));
  pos += 8;
  uint64_t max_vertices = 0, max_expanded = 0;
  uint32_t next_seq = 0, pairs = 0;
  if (!GetVarint64(buf, &pos, &max_vertices) ||
      !GetVarint64(buf, &pos, &max_expanded) ||
      !GetVarint32(buf, &pos, &next_seq) || !GetVarint32(buf, &pos, &pairs)) {
    return Status::Corruption("index meta: truncated counters");
  }
  meta.options.max_pattern_vertices = max_vertices;
  meta.options.max_expanded_nodes = max_expanded;
  meta.next_seq = next_seq;
  meta.edge_weights.reserve(pairs);
  for (uint32_t i = 0; i < pairs; ++i) {
    uint64_t pair = 0;
    uint32_t weight = 0;
    if (!GetVarint64(buf, &pos, &pair) || !GetVarint32(buf, &pos, &weight)) {
      return Status::Corruption("index meta: truncated weights");
    }
    meta.edge_weights.emplace_back(pair, weight);
  }
  if (version >= 2) {
    if (!GetVarint32(buf, &pos, &meta.storage_format) ||
        !GetVarint32(buf, &pos, &meta.indexed_docs)) {
      return Status::Corruption("index meta: truncated storage fields");
    }
  } else {
    meta.storage_format = 0;  // pre-checksum page format
    meta.indexed_docs = kIndexedDocsUnknown;
  }
  if (version >= 3) {
    if (!GetVarint64(buf, &pos, &meta.generation) ||
        !GetVarint64(buf, &pos, &meta.wal_bytes)) {
      return Status::Corruption("index meta: truncated generation fields");
    }
  }
  if (version >= 4) {
    uint32_t engine = 0;
    if (!GetVarint32(buf, &pos, &engine)) {
      return Status::Corruption("index meta: truncated probe engine");
    }
    if (engine > static_cast<uint32_t>(ProbeEngine::kAuto)) {
      return Status::Corruption("index meta: unknown probe engine");
    }
    meta.options.probe_engine = static_cast<ProbeEngine>(engine);
  }
  if (pos != buf.size()) {
    return Status::Corruption("index meta: trailing bytes");
  }
  return meta;
}

}  // namespace fix
