#include "core/metrics.h"

#include <set>

#include "query/match.h"

namespace fix {

GroundTruth ComputeGroundTruth(const Corpus& corpus, const TwigQuery& query,
                               int depth_limit) {
  GroundTruth gt;
  const bool rooted = query.steps[query.root].axis == Axis::kChild;
  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    const Document& doc = corpus.doc(d);
    NodeId root_elem = doc.root_element();
    if (root_elem == kInvalidNode) continue;
    // Depth-limited indexes enumerate per element for every document (see
    // the deviation note in fix_index.cc); only a 0 limit makes documents
    // single units.
    bool doc_unit = depth_limit == 0;
    TwigMatcher matcher(&doc);
    if (doc_unit) {
      gt.entries += 1;
      std::vector<NodeId> bindings = matcher.Evaluate(query);
      if (!bindings.empty()) ++gt.producers;
      gt.results += bindings.size();
    } else {
      // One entry per element (Theorem 4); an entry produces iff refinement
      // rooted at its element yields at least one binding.
      std::set<NodeId> distinct;
      for (NodeId n = 1; n < doc.num_nodes(); ++n) {
        if (!doc.IsElement(n)) continue;
        gt.entries += 1;
        if (doc.label(n) != query.steps[query.root].label) continue;
        if (rooted && doc.parent(n) != 0) continue;
        std::vector<NodeId> bindings = matcher.EvaluateAt(n, query);
        if (!bindings.empty()) ++gt.producers;
        for (NodeId b : bindings) distinct.insert(b);
      }
      gt.results += distinct.size();
    }
  }
  return gt;
}

}  // namespace fix
