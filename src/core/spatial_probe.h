// SpatialProbe: the paper's Section 8 future-work direction — "we also plan
// to move the index to R-tree or other high-dimensional indexing trees to
// gain further pruning power" — realized as per-label kd-trees over the
// feature plane (λ_max, λ₂).
//
// The containment probe is a dominance query: candidates are entries with
// λ_max >= a AND λ₂ >= b (a quarter-plane). The B+-tree can only exploit
// the λ_max half (its sort order) and then filters λ₂ row by row; a kd-tree
// prunes whole subtrees whose bounding boxes fall outside the quarter-plane,
// touching far fewer entries for λ₂-selective probes.
//
// The structure is built once from an ordered scan of a FIX B+-tree and is
// immutable (static balanced kd-tree); rebuild after index updates.

#ifndef FIX_CORE_SPATIAL_PROBE_H_
#define FIX_CORE_SPATIAL_PROBE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "core/feature.h"
#include "storage/btree.h"
#include "xml/label_table.h"

namespace fix {

class SpatialProbe {
 public:
  struct Hit {
    FeatureKey key;
    IndexValue value;
  };

  /// Builds per-label kd-trees with one scan of the index B+-tree.
  [[nodiscard]] static Result<SpatialProbe> FromBTree(BTree* btree);

  /// All entries with the given root label dominating (a, b):
  /// λ_max >= a and λ₂ >= b. `visited` (optional) counts kd-tree nodes
  /// touched — the probe-cost metric the ablation bench reports.
  std::vector<Hit> Query(LabelId label, double lambda_max_min,
                         double lambda2_min, uint64_t* visited = nullptr) const;

  /// Entries stored across all labels.
  uint64_t total() const { return total_; }

  /// Approximate memory footprint in bytes.
  uint64_t ApproxBytes() const;

 private:
  struct Node {
    Hit hit;                 // the splitting entry
    double max_lambda_max;   // subtree upper bounds (for pruning)
    double max_lambda2;
    int32_t left = -1;
    int32_t right = -1;
    uint8_t dim = 0;         // 0: split on lambda_max, 1: on lambda2
  };

  struct LabelTree {
    std::vector<Node> nodes;
    int32_t root = -1;
  };

  static int32_t BuildRec(std::vector<Hit>& hits, size_t lo, size_t hi,
                          int depth, LabelTree* tree);
  static void QueryRec(const LabelTree& tree, int32_t node, double a,
                       double b, std::vector<Hit>* out, uint64_t* visited);

  std::map<LabelId, LabelTree> per_label_;
  uint64_t total_ = 0;
};

}  // namespace fix

#endif  // FIX_CORE_SPATIAL_PROBE_H_
