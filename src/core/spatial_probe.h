// SpatialProbe: the paper's Section 8 future-work direction — "we also plan
// to move the index to R-tree or other high-dimensional indexing trees to
// gain further pruning power" — realized as per-label kd-trees over the
// feature plane (λ_max, λ₂), promoted to a first-class probe engine
// (IndexOptions::probe_engine) on the production query path.
//
// The containment probe needs entries with λ_max >= a AND λ_min <= c AND
// (optionally) λ₂ >= b. The B+-tree can only exploit the λ_max half (its
// sort order) and then filters the rest row by row; a kd-tree prunes whole
// subtrees whose bounding boxes fall outside the query region, touching far
// fewer entries for λ₂-selective probes.
//
// Ordering contract: all probe output is sorted in encoded-FeatureKey order
// (label, ord(λ_max), ord(λ_min), ord(λ₂), seq) — byte-identical to what
// the B+-tree range scan produces, so the two engines are interchangeable
// under ExecuteMany's deterministic merge. To make that exact, the filter
// bounds and comparisons live in ord-u64 space (the order-preserving
// IEEE-754→u64 map of common/bytes.h), the same domain the B+-tree's
// memcmp filters operate in.
//
// The structure is immutable once built (a static balanced kd-tree per
// label) and is stamped with the B+-tree generation it was built against:
// FixIndex publishes a fresh shared_ptr per committed generation and pinned
// readers keep probing their snapshot across COW commits. Persisted as a
// CRC32C-framed sidecar at <index>.spatial (through the PageIo seam) so
// reopening an index does not pay the O(n) rebuild.

#ifndef FIX_CORE_SPATIAL_PROBE_H_
#define FIX_CORE_SPATIAL_PROBE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/feature.h"
#include "storage/btree.h"
#include "storage/page_io.h"
#include "xml/label_table.h"

namespace fix {

class SpatialProbe {
 public:
  struct Hit {
    FeatureKey key;
    IndexValue value;
  };

  /// The containment filter in ord-u64 space (`OrderPreservingDouble`).
  /// Defaults disable each clause: every ord value is >= 0 and <= ~0, so an
  /// untouched field never rejects an entry. Callers that mirror the
  /// B+-tree probe must convert bounds with the *same expressions* the
  /// B+-tree path encodes (e.g. ord(λ_max − ε)) for byte-identical sets.
  struct Filter {
    uint64_t min_lmax = 0;                    ///< ord lower bound on λ_max
    uint64_t max_lmin = ~uint64_t{0};         ///< ord upper bound on λ_min
    uint64_t min_l2 = 0;                      ///< ord lower bound on λ₂
  };

  /// Builds per-label kd-trees with one ordered scan of the index B+-tree;
  /// the result is stamped with the tree's current generation.
  [[nodiscard]] static Result<SpatialProbe> FromBTree(BTree* btree);

  /// Builds from an already key-sorted (encoded key, encoded value) stream —
  /// the exact vector BulkLoad consumes — so a bulk build attaches the
  /// spatial structure without a second B+-tree scan.
  [[nodiscard]] static SpatialProbe FromSortedEntries(
      const std::vector<std::pair<std::string, std::string>>& kv,
      uint64_t generation);

  /// Appends every entry carrying `label` that passes `filter` to `out`,
  /// sorted in encoded-key order. `visited` (optional) accumulates kd-tree
  /// nodes touched — the probe-cost metric (entries_scanned equivalent).
  void Probe(LabelId label, const Filter& filter, std::vector<Hit>* out,
             uint64_t* visited = nullptr) const;

  /// Probe over every label, labels ascending (the B+-tree whole-scan
  /// order for probes that cannot prune on the root label).
  void ProbeAll(const Filter& filter, std::vector<Hit>* out,
                uint64_t* visited = nullptr) const;

  /// Legacy dominance query (λ_max >= a AND λ₂ >= b), bounds in double
  /// space. Kept for the ablation bench and tests that compare against a
  /// double-compare brute force: ±0 bounds are normalized to −0 before the
  /// ord conversion so 0.0 == −0.0 holds like it does for doubles.
  std::vector<Hit> Query(LabelId label, double lambda_max_min,
                         double lambda2_min, uint64_t* visited = nullptr) const;

  /// Entries stored across all labels.
  uint64_t total() const { return total_; }

  /// The B+-tree generation this structure reflects.
  uint64_t generation() const { return generation_; }

  /// Approximate memory footprint in bytes.
  uint64_t ApproxBytes() const;

  // --- sidecar persistence (<index>.spatial) -------------------------------

  /// What InspectSidecar reports without materializing the trees.
  struct SidecarInfo {
    uint64_t generation = 0;
    uint64_t total = 0;
    uint32_t labels = 0;
    uint64_t bytes = 0;
  };

  /// Writes the structure as a CRC32C-framed sidecar at `path` through the
  /// PageIo seam (`io_factory` unset => a plain file), truncate-then-write
  /// plus fsync.
  [[nodiscard]] Status WriteSidecar(
      const std::string& path,
      const std::function<std::unique_ptr<PageIo>()>& io_factory) const;

  /// Reads a sidecar back, validating magic, version, CRC, and tree
  /// topology (child ids strictly above their parent, each node referenced
  /// exactly once). Subtree bounds are recomputed, never trusted from disk.
  /// @return the probe, NotFound if no sidecar exists, or Corruption.
  [[nodiscard]] static Result<SpatialProbe> LoadSidecar(
      const std::string& path,
      const std::function<std::unique_ptr<PageIo>()>& io_factory);

  /// Read-only verification scan for fixdb_scrub: full LoadSidecar
  /// validation, returning only the header facts.
  [[nodiscard]] static Result<SidecarInfo> InspectSidecar(
      const std::string& path);

 private:
  /// One index entry in ord-u64 feature space. u64 comparisons here are
  /// exactly memcmp on the big-endian encoded key slices.
  struct Entry {
    uint64_t lmax = 0;
    uint64_t lmin = 0;
    uint64_t l2 = 0;
    uint32_t seq = 0;
    IndexValue value;
  };

  struct Node {
    Entry entry;            // the splitting entry
    uint64_t max_lmax = 0;  // subtree bounds (for pruning); recomputed on
    uint64_t max_l2 = 0;    // load, never persisted
    uint64_t min_lmin = 0;
    int32_t left = -1;
    int32_t right = -1;
    uint8_t dim = 0;  // 0: split on ord(λ_max), 1: on ord(λ₂)
  };

  /// Nodes are laid out so every child id is strictly greater than its
  /// parent's (the node is appended before its subtrees recurse), and the
  /// root — when the tree is non-empty — is always node 0. The sidecar
  /// format leans on both invariants.
  struct LabelTree {
    std::vector<Node> nodes;
  };

  static int32_t BuildRec(std::vector<Entry>& entries, size_t lo, size_t hi,
                          int depth, LabelTree* tree);
  static void ProbeRec(const LabelTree& tree, int32_t node, const Filter& f,
                       std::vector<Entry>* out, uint64_t* visited);
  static LabelTree BuildTree(std::vector<Entry>& entries);
  /// Folds subtree bounds bottom-up (children have larger ids).
  static void RecomputeBounds(LabelTree* tree);
  void EmitHits(LabelId label, std::vector<Entry>* matches,
                std::vector<Hit>* out) const;

  std::map<LabelId, LabelTree> per_label_;
  uint64_t total_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace fix

#endif  // FIX_CORE_SPATIAL_PROBE_H_
