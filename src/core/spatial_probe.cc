#include "core/spatial_probe.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/bytes.h"
#include "common/crc32c.h"

namespace fix {

namespace {

constexpr uint32_t kSidecarMagic = 0x46585350;  // "FXSP"
constexpr uint32_t kSidecarVersion = 1;
/// magic(4) | version(4) | payload_len(8) | payload_crc32c(4)
constexpr size_t kSidecarHeaderSize = 20;
/// ord λ_max/λ_min/λ₂ (8 each) | seq, doc, node (4 each) | clustered
/// offset (8) | left, right (4 each) | dim (1)
constexpr size_t kSidecarNodeSize = 53;
constexpr uint32_t kNoChild = UINT32_MAX;

std::unique_ptr<PageIo> MakeIo(
    const std::function<std::unique_ptr<PageIo>()>& factory) {
  return factory != nullptr ? factory() : std::make_unique<FilePageIo>();
}

}  // namespace

SpatialProbe::LabelTree SpatialProbe::BuildTree(std::vector<Entry>& entries) {
  LabelTree tree;
  tree.nodes.reserve(entries.size());
  BuildRec(entries, 0, entries.size(), 0, &tree);
  return tree;
}

Result<SpatialProbe> SpatialProbe::FromBTree(BTree* btree) {
  SpatialProbe probe;
  probe.generation_ = btree->generation();
  // The ordered scan delivers entries grouped by label (the key's leading
  // field), labels ascending.
  std::map<LabelId, std::vector<Entry>> buckets;
  BTree::Iterator it;
  FIX_ASSIGN_OR_RETURN(it, btree->SeekFirst());
  while (it.Valid()) {
    std::string_view key = it.key();
    Entry e;
    e.lmax = DecodeBigEndian64(key.data() + 4);
    e.lmin = DecodeBigEndian64(key.data() + 12);
    e.l2 = DecodeBigEndian64(key.data() + 20);
    e.seq = DecodeBigEndian32(key.data() + 28);
    e.value = DecodeIndexValue(it.value());
    buckets[DecodeBigEndian32(key.data())].push_back(e);
    ++probe.total_;
    FIX_RETURN_IF_ERROR(it.Next());
  }
  for (auto& [label, entries] : buckets) {
    probe.per_label_.emplace(label, BuildTree(entries));
  }
  return probe;
}

SpatialProbe SpatialProbe::FromSortedEntries(
    const std::vector<std::pair<std::string, std::string>>& kv,
    uint64_t generation) {
  SpatialProbe probe;
  probe.generation_ = generation;
  probe.total_ = kv.size();
  // Keys are sorted, so each label's entries form one contiguous run.
  size_t i = 0;
  while (i < kv.size()) {
    const LabelId label = DecodeBigEndian32(kv[i].first.data());
    std::vector<Entry> entries;
    while (i < kv.size() && DecodeBigEndian32(kv[i].first.data()) == label) {
      const char* key = kv[i].first.data();
      Entry e;
      e.lmax = DecodeBigEndian64(key + 4);
      e.lmin = DecodeBigEndian64(key + 12);
      e.l2 = DecodeBigEndian64(key + 20);
      e.seq = DecodeBigEndian32(key + 28);
      e.value = DecodeIndexValue(kv[i].second);
      entries.push_back(e);
      ++i;
    }
    probe.per_label_.emplace(label, BuildTree(entries));
  }
  return probe;
}

int32_t SpatialProbe::BuildRec(std::vector<Entry>& entries, size_t lo,
                               size_t hi, int depth, LabelTree* tree) {
  if (lo >= hi) return -1;
  uint8_t dim = static_cast<uint8_t>(depth % 2);
  size_t mid = lo + (hi - lo) / 2;
  auto key_of = [dim](const Entry& e) { return dim == 0 ? e.lmax : e.l2; };
  std::nth_element(
      entries.begin() + lo, entries.begin() + mid, entries.begin() + hi,
      [&](const Entry& a, const Entry& b) { return key_of(a) < key_of(b); });
  // The node is appended before its subtrees recurse, so child ids are
  // always strictly greater than the parent's and the root is node 0 — the
  // invariants the sidecar loader validates and RecomputeBounds leans on.
  int32_t id = static_cast<int32_t>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[id].entry = entries[mid];
  tree->nodes[id].dim = dim;
  int32_t left = BuildRec(entries, lo, mid, depth + 1, tree);
  int32_t right = BuildRec(entries, mid + 1, hi, depth + 1, tree);
  Node& node = tree->nodes[id];
  node.left = left;
  node.right = right;
  node.max_lmax = node.entry.lmax;
  node.max_l2 = node.entry.l2;
  node.min_lmin = node.entry.lmin;
  for (int32_t child : {left, right}) {
    if (child < 0) continue;
    node.max_lmax = std::max(node.max_lmax, tree->nodes[child].max_lmax);
    node.max_l2 = std::max(node.max_l2, tree->nodes[child].max_l2);
    node.min_lmin = std::min(node.min_lmin, tree->nodes[child].min_lmin);
  }
  return id;
}

void SpatialProbe::RecomputeBounds(LabelTree* tree) {
  // Children have strictly larger ids, so one reverse pass folds bottom-up.
  for (size_t i = tree->nodes.size(); i-- > 0;) {
    Node& node = tree->nodes[i];
    node.max_lmax = node.entry.lmax;
    node.max_l2 = node.entry.l2;
    node.min_lmin = node.entry.lmin;
    for (int32_t child : {node.left, node.right}) {
      if (child < 0) continue;
      const Node& c = tree->nodes[child];
      node.max_lmax = std::max(node.max_lmax, c.max_lmax);
      node.max_l2 = std::max(node.max_l2, c.max_l2);
      node.min_lmin = std::min(node.min_lmin, c.min_lmin);
    }
  }
}

void SpatialProbe::ProbeRec(const LabelTree& tree, int32_t node_id,
                            const Filter& f, std::vector<Entry>* out,
                            uint64_t* visited) {
  if (node_id < 0) return;
  const Node& node = tree.nodes[node_id];
  if (visited != nullptr) ++(*visited);
  // Prune: nothing below can pass if the subtree's bounds already fail a
  // clause. min_l2 = 0 / max_lmin = ~0 (disabled clauses) never prune.
  if (node.max_lmax < f.min_lmax || node.max_l2 < f.min_l2 ||
      node.min_lmin > f.max_lmin) {
    return;
  }
  const Entry& e = node.entry;
  if (e.lmax >= f.min_lmax && e.lmin <= f.max_lmin && e.l2 >= f.min_l2) {
    out->push_back(e);
  }
  // On the split dimension the left child holds values <= the node's; if
  // the node's split value is already below that dimension's lower bound,
  // only the right side can qualify. λ_min is not a split dimension, so it
  // only prunes via the subtree bounds above.
  const uint64_t split = node.dim == 0 ? e.lmax : e.l2;
  const uint64_t bound = node.dim == 0 ? f.min_lmax : f.min_l2;
  if (split >= bound) {
    ProbeRec(tree, node.left, f, out, visited);
  }
  ProbeRec(tree, node.right, f, out, visited);
}

void SpatialProbe::EmitHits(LabelId label, std::vector<Entry>* matches,
                            std::vector<Hit>* out) const {
  // Encoded-key order within one label: (ord λ_max, ord λ_min, ord λ₂,
  // seq). This is what makes spatial output byte-identical to the B+-tree
  // range scan's.
  std::sort(matches->begin(), matches->end(),
            [](const Entry& a, const Entry& b) {
              if (a.lmax != b.lmax) return a.lmax < b.lmax;
              if (a.lmin != b.lmin) return a.lmin < b.lmin;
              if (a.l2 != b.l2) return a.l2 < b.l2;
              return a.seq < b.seq;
            });
  out->reserve(out->size() + matches->size());
  for (const Entry& e : *matches) {
    Hit hit;
    hit.key.root_label = label;
    hit.key.lambda_max = OrderPreservingToDouble(e.lmax);
    hit.key.lambda_min = OrderPreservingToDouble(e.lmin);
    hit.key.lambda2 = OrderPreservingToDouble(e.l2);
    hit.key.seq = e.seq;
    hit.value = e.value;
    out->push_back(hit);
  }
}

void SpatialProbe::Probe(LabelId label, const Filter& filter,
                         std::vector<Hit>* out, uint64_t* visited) const {
  auto it = per_label_.find(label);
  if (it == per_label_.end()) return;
  std::vector<Entry> matches;
  if (!it->second.nodes.empty()) {
    ProbeRec(it->second, 0, filter, &matches, visited);
  }
  EmitHits(label, &matches, out);
}

void SpatialProbe::ProbeAll(const Filter& filter, std::vector<Hit>* out,
                            uint64_t* visited) const {
  // std::map iterates labels ascending — the B+-tree whole-scan order.
  for (const auto& [label, tree] : per_label_) {
    std::vector<Entry> matches;
    if (!tree.nodes.empty()) {
      ProbeRec(tree, 0, filter, &matches, visited);
    }
    EmitHits(label, &matches, out);
  }
}

std::vector<SpatialProbe::Hit> SpatialProbe::Query(LabelId label,
                                                   double lambda_max_min,
                                                   double lambda2_min,
                                                   uint64_t* visited) const {
  // ord(−0) < ord(+0) but −0 == +0 for doubles; normalizing a ±0 bound to
  // −0 keeps this dominance query equivalent to double comparisons.
  if (lambda_max_min == 0.0) lambda_max_min = -0.0;
  if (lambda2_min == 0.0) lambda2_min = -0.0;
  Filter f;
  f.min_lmax = OrderPreservingDouble(lambda_max_min);
  f.min_l2 = OrderPreservingDouble(lambda2_min);
  std::vector<Hit> out;
  Probe(label, f, &out, visited);
  return out;
}

uint64_t SpatialProbe::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const auto& [label, tree] : per_label_) {
    (void)label;
    bytes += tree.nodes.size() * sizeof(Node);
  }
  return bytes;
}

// --- sidecar persistence -----------------------------------------------------

Status SpatialProbe::WriteSidecar(
    const std::string& path,
    const std::function<std::unique_ptr<PageIo>()>& io_factory) const {
  std::string payload;
  PutVarint64(&payload, generation_);
  PutVarint64(&payload, total_);
  PutVarint32(&payload, static_cast<uint32_t>(per_label_.size()));
  for (const auto& [label, tree] : per_label_) {
    PutVarint32(&payload, label);
    PutVarint32(&payload, static_cast<uint32_t>(tree.nodes.size()));
    for (const Node& node : tree.nodes) {
      // Subtree bounds are deliberately not persisted: the loader recomputes
      // them, so corrupted bounds can never silently drop candidates.
      PutFixed64(&payload, node.entry.lmax);
      PutFixed64(&payload, node.entry.lmin);
      PutFixed64(&payload, node.entry.l2);
      PutFixed32(&payload, node.entry.seq);
      PutFixed32(&payload, node.entry.value.ref.doc_id);
      PutFixed32(&payload, node.entry.value.ref.node_id);
      PutFixed64(&payload, node.entry.value.clustered_offset);
      PutFixed32(&payload,
                 node.left < 0 ? kNoChild : static_cast<uint32_t>(node.left));
      PutFixed32(&payload, node.right < 0 ? kNoChild
                                          : static_cast<uint32_t>(node.right));
      payload.push_back(static_cast<char>(node.dim));
    }
  }

  std::string buf;
  buf.reserve(kSidecarHeaderSize + payload.size());
  PutFixed32(&buf, kSidecarMagic);
  PutFixed32(&buf, kSidecarVersion);
  PutFixed64(&buf, payload.size());
  PutFixed32(&buf, Crc32c(payload.data(), payload.size()));
  buf += payload;

  std::unique_ptr<PageIo> io = MakeIo(io_factory);
  FIX_RETURN_IF_ERROR(io->Open(path, /*create=*/true));
  Status status = [&]() -> Status {
    FIX_RETURN_IF_ERROR(io->Truncate(buf.size()));
    FIX_RETURN_IF_ERROR(io->Write(0, buf.data(), buf.size()));
    return io->Sync();
  }();
  Status closed = io->Close();
  if (!status.ok()) return status;
  return closed;
}

Result<SpatialProbe> SpatialProbe::LoadSidecar(
    const std::string& path,
    const std::function<std::unique_ptr<PageIo>()>& io_factory) {
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::NotFound("no spatial sidecar at " + path);
  }
  std::unique_ptr<PageIo> io = MakeIo(io_factory);
  FIX_RETURN_IF_ERROR(io->Open(path, /*create=*/false));
  std::string buf;
  Status status = [&]() -> Status {
    uint64_t size = 0;
    FIX_ASSIGN_OR_RETURN(size, io->Size());
    if (size < kSidecarHeaderSize) {
      return Status::Corruption("spatial sidecar: truncated header");
    }
    buf.resize(size);
    return io->Read(0, buf.data(), size);
  }();
  Status closed = io->Close();
  FIX_RETURN_IF_ERROR(status);
  FIX_RETURN_IF_ERROR(closed);

  if (DecodeFixed32(buf.data()) != kSidecarMagic) {
    return Status::Corruption("spatial sidecar: bad magic");
  }
  if (DecodeFixed32(buf.data() + 4) != kSidecarVersion) {
    return Status::Corruption("spatial sidecar: unsupported version");
  }
  const uint64_t payload_len = DecodeFixed64(buf.data() + 8);
  if (payload_len != buf.size() - kSidecarHeaderSize) {
    return Status::Corruption("spatial sidecar: payload length mismatch");
  }
  const char* payload = buf.data() + kSidecarHeaderSize;
  if (DecodeFixed32(buf.data() + 16) != Crc32c(payload, payload_len)) {
    return Status::Corruption("spatial sidecar: checksum mismatch");
  }

  SpatialProbe probe;
  size_t pos = kSidecarHeaderSize;
  uint32_t label_count = 0;
  if (!GetVarint64(buf, &pos, &probe.generation_) ||
      !GetVarint64(buf, &pos, &probe.total_) ||
      !GetVarint32(buf, &pos, &label_count)) {
    return Status::Corruption("spatial sidecar: truncated counts");
  }
  uint64_t entries_seen = 0;
  LabelId prev_label = 0;
  for (uint32_t l = 0; l < label_count; ++l) {
    uint32_t label = 0, node_count = 0;
    if (!GetVarint32(buf, &pos, &label) ||
        !GetVarint32(buf, &pos, &node_count)) {
      return Status::Corruption("spatial sidecar: truncated label header");
    }
    if (l > 0 && label <= prev_label) {
      return Status::Corruption("spatial sidecar: labels out of order");
    }
    prev_label = label;
    if (node_count == 0 ||
        pos + static_cast<uint64_t>(node_count) * kSidecarNodeSize >
            buf.size()) {
      return Status::Corruption("spatial sidecar: truncated nodes");
    }
    LabelTree tree;
    tree.nodes.resize(node_count);
    std::vector<uint8_t> referenced(node_count, 0);
    for (uint32_t i = 0; i < node_count; ++i) {
      const char* p = buf.data() + pos;
      Node& node = tree.nodes[i];
      node.entry.lmax = DecodeFixed64(p);
      node.entry.lmin = DecodeFixed64(p + 8);
      node.entry.l2 = DecodeFixed64(p + 16);
      node.entry.seq = DecodeFixed32(p + 24);
      node.entry.value.ref.doc_id = DecodeFixed32(p + 28);
      node.entry.value.ref.node_id = DecodeFixed32(p + 32);
      node.entry.value.clustered_offset = DecodeFixed64(p + 36);
      const uint32_t left = DecodeFixed32(p + 44);
      const uint32_t right = DecodeFixed32(p + 48);
      node.dim = static_cast<uint8_t>(p[52]);
      pos += kSidecarNodeSize;
      if (node.dim > 1) {
        return Status::Corruption("spatial sidecar: bad split dimension");
      }
      // Topology: children strictly above their parent and inside the
      // array (rules out cycles), each referenced at most once.
      for (uint32_t child : {left, right}) {
        if (child == kNoChild) continue;
        if (child <= i || child >= node_count || referenced[child] != 0) {
          return Status::Corruption("spatial sidecar: bad tree topology");
        }
        referenced[child] = 1;
      }
      node.left = left == kNoChild ? -1 : static_cast<int32_t>(left);
      node.right = right == kNoChild ? -1 : static_cast<int32_t>(right);
    }
    // Every node except the root (id 0) must be referenced exactly once.
    for (uint32_t i = 1; i < node_count; ++i) {
      if (referenced[i] == 0) {
        return Status::Corruption("spatial sidecar: orphaned node");
      }
    }
    RecomputeBounds(&tree);
    entries_seen += node_count;
    probe.per_label_.emplace(label, std::move(tree));
  }
  if (pos != buf.size()) {
    return Status::Corruption("spatial sidecar: trailing bytes");
  }
  if (entries_seen != probe.total_) {
    return Status::Corruption("spatial sidecar: entry count mismatch");
  }
  return probe;
}

Result<SpatialProbe::SidecarInfo> SpatialProbe::InspectSidecar(
    const std::string& path) {
  SpatialProbe probe;
  FIX_ASSIGN_OR_RETURN(probe, LoadSidecar(path, nullptr));
  SidecarInfo info;
  info.generation = probe.generation_;
  info.total = probe.total_;
  info.labels = static_cast<uint32_t>(probe.per_label_.size());
  info.bytes = probe.ApproxBytes();
  return info;
}

}  // namespace fix
