#include "core/spatial_probe.h"

#include <algorithm>

namespace fix {

Result<SpatialProbe> SpatialProbe::FromBTree(BTree* btree) {
  SpatialProbe probe;
  // Bucket entries per label (contiguous in key order).
  std::map<LabelId, std::vector<Hit>> buckets;
  BTree::Iterator it;
  FIX_ASSIGN_OR_RETURN(it, btree->SeekFirst());
  while (it.Valid()) {
    Hit hit;
    hit.key = DecodeFeatureKey(it.key());
    hit.value = DecodeIndexValue(it.value());
    buckets[hit.key.root_label].push_back(hit);
    ++probe.total_;
    FIX_RETURN_IF_ERROR(it.Next());
  }
  for (auto& [label, hits] : buckets) {
    LabelTree tree;
    tree.nodes.reserve(hits.size());
    tree.root = BuildRec(hits, 0, hits.size(), 0, &tree);
    probe.per_label_.emplace(label, std::move(tree));
  }
  return probe;
}

int32_t SpatialProbe::BuildRec(std::vector<Hit>& hits, size_t lo, size_t hi,
                               int depth, LabelTree* tree) {
  if (lo >= hi) return -1;
  uint8_t dim = static_cast<uint8_t>(depth % 2);
  size_t mid = lo + (hi - lo) / 2;
  auto key_of = [dim](const Hit& h) {
    return dim == 0 ? h.key.lambda_max : h.key.lambda2;
  };
  std::nth_element(hits.begin() + lo, hits.begin() + mid, hits.begin() + hi,
                   [&](const Hit& a, const Hit& b) {
                     return key_of(a) < key_of(b);
                   });
  int32_t id = static_cast<int32_t>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[id].hit = hits[mid];
  tree->nodes[id].dim = dim;
  int32_t left = BuildRec(hits, lo, mid, depth + 1, tree);
  int32_t right = BuildRec(hits, mid + 1, hi, depth + 1, tree);
  Node& node = tree->nodes[id];
  node.left = left;
  node.right = right;
  node.max_lambda_max = node.hit.key.lambda_max;
  node.max_lambda2 = node.hit.key.lambda2;
  for (int32_t child : {left, right}) {
    if (child < 0) continue;
    node.max_lambda_max =
        std::max(node.max_lambda_max, tree->nodes[child].max_lambda_max);
    node.max_lambda2 =
        std::max(node.max_lambda2, tree->nodes[child].max_lambda2);
  }
  return id;
}

void SpatialProbe::QueryRec(const LabelTree& tree, int32_t node_id, double a,
                            double b, std::vector<Hit>* out,
                            uint64_t* visited) {
  if (node_id < 0) return;
  const Node& node = tree.nodes[node_id];
  if (visited != nullptr) ++(*visited);
  // Prune: no entry below can dominate (a, b) if the subtree maxima don't.
  if (node.max_lambda_max < a || node.max_lambda2 < b) return;
  if (node.hit.key.lambda_max >= a && node.hit.key.lambda2 >= b) {
    out->push_back(node.hit);
  }
  // On the split dimension, the left child holds values <= the node's; if
  // the node's split value is already below the bound, only the right side
  // can qualify on that dimension.
  double split = node.dim == 0 ? node.hit.key.lambda_max : node.hit.key.lambda2;
  double bound = node.dim == 0 ? a : b;
  if (split >= bound) {
    QueryRec(tree, node.left, a, b, out, visited);
  }
  QueryRec(tree, node.right, a, b, out, visited);
}

std::vector<SpatialProbe::Hit> SpatialProbe::Query(LabelId label,
                                                   double lambda_max_min,
                                                   double lambda2_min,
                                                   uint64_t* visited) const {
  std::vector<Hit> out;
  auto it = per_label_.find(label);
  if (it == per_label_.end()) return out;
  QueryRec(it->second, it->second.root, lambda_max_min, lambda2_min, &out,
           visited);
  return out;
}

uint64_t SpatialProbe::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const auto& [label, tree] : per_label_) {
    (void)label;
    bytes += tree.nodes.size() * sizeof(Node);
  }
  return bytes;
}

}  // namespace fix
