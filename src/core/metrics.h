// Ground-truth computation for the implementation-independent metrics of
// Section 6.2.
//
// The metrics need rst — the number of *index entries* whose pattern
// instance produces at least one final result — computed independently of
// the index so that the harness can (a) report exact selectivity and
// (b) assert the no-false-negative invariant (rst must equal the number of
// producing candidates whenever the probe is sound).

#ifndef FIX_CORE_METRICS_H_
#define FIX_CORE_METRICS_H_

#include <cstdint>

#include "core/corpus.h"
#include "query/twig_query.h"

namespace fix {

struct GroundTruth {
  uint64_t entries = 0;    ///< index entries under this granularity
  uint64_t producers = 0;  ///< entries with >= 1 result
  uint64_t results = 0;    ///< total result bindings (deduplicated per doc)
};

/// Replays the index granularity of Algorithm 1 with `depth_limit` over the
/// corpus: documents no deeper than the limit (or all documents when the
/// limit is 0) count one entry each; deeper documents count one entry per
/// element, producing iff refinement rooted at that element yields results.
GroundTruth ComputeGroundTruth(const Corpus& corpus, const TwigQuery& query,
                               int depth_limit);

/// Per-database storage fault bookkeeping, surfaced by Database::health().
/// Counts events, not states: a single corrupt index bumps
/// corruption_events once at detection and quarantined_indexes once at
/// quarantine, then every query routed around it bumps degraded_queries.
struct StorageHealth {
  uint64_t corruption_events = 0;    ///< kCorruption statuses observed
  uint64_t quarantined_indexes = 0;  ///< indexes renamed aside as corrupt
  uint64_t degraded_queries = 0;     ///< queries answered by full scan
  uint64_t rebuilds = 0;             ///< successful RebuildIndex calls
  /// Spectral feature cache totals accumulated across every index this
  /// database built or rebuilt (see IndexOptions::feature_cache_mb).
  uint64_t feature_cache_hits = 0;
  uint64_t feature_cache_misses = 0;
  uint64_t feature_cache_evictions = 0;
};

}  // namespace fix

#endif  // FIX_CORE_METRICS_H_
