// FixIndex: the paper's contribution — a feature-based index over twig
// patterns (Sections 4 and 5).
//
// Construction (Algorithm 1): every indexable unit (a whole small document,
// or the depth-L subpattern of each element of a large document) is reduced
// to its bisimulation graph, translated to an anti-symmetric matrix, and
// its eigenvalue features {root label, λ_max, λ_min} become the B+-tree
// key. Unclustered entries store a pointer into primary storage; clustered
// entries store subtree copies laid out in key order.
//
// Lookup (Algorithm 2): the query's twig pattern gets the same treatment;
// every indexed entry whose root label matches and whose eigenvalue range
// contains the query's is a candidate (Theorem 3 guarantees no false
// negatives; Theorem 5 guarantees completeness of the enumeration).

#ifndef FIX_CORE_FIX_INDEX_H_
#define FIX_CORE_FIX_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "common/result.h"
#include "core/corpus.h"
#include "core/feature.h"
#include "core/histogram.h"
#include "core/index_options.h"
#include "core/persist.h"
#include "core/spatial_probe.h"
#include "query/twig_query.h"
#include "spectral/edge_encoder.h"
#include "spectral/feature_cache.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "xml/value_hash.h"

namespace fix {

/// The FIX index proper: spectral feature keys in a disk-resident B+-tree.
///
/// Thread-safety: the read path — Lookup, Probe, QueryFeatures, and the
/// const accessors — is safe from any number of threads once the index is
/// built or opened. Reads go through the lock-striped BufferPool and the
/// B+-tree's snapshot contract (btree.h): every lookup pins the published
/// generation and scans only its immutable pages, so a SINGLE writer
/// (InsertDocument or RemoveDocument, never two at once) may run
/// concurrently with any number of readers — commits are built
/// copy-on-write and become visible atomically, and readers never stall on
/// the writer. The one mutable piece shared by both sides, the edge-weight
/// encoder, is serialized by an internal mutex (an unseen pair can never
/// match indexed data, so interleaved interning cannot change any result
/// set). The spatial probe structure follows the same snapshot discipline
/// as the B+-tree: readers copy an immutable shared_ptr under a second
/// internal mutex, the writer publishes a fresh structure per committed
/// generation, and in-flight probes keep the snapshot they started with.
/// Build and EstimateCandidates (which lazily builds the costing
/// histogram) remain writer-exclusive: they must not overlap with each
/// other, with the single writer, or with reads. Build() parallelizes
/// internally (per IndexOptions::build_threads) but returns a fully
/// quiesced object; no worker threads outlive it. See docs/ARCHITECTURE.md,
/// "Concurrent reads" and "Write path: COW generations + WAL".
///
/// Observability: construction records fix.build.* and lookup records
/// fix.index.probe* in the process-wide MetricsRegistry, and both emit
/// trace spans ("index.build", "index.probe") when tracing is enabled.
class FixIndex {
 public:
  /// One index hit awaiting refinement.
  struct Candidate {
    FeatureKey key;
    NodeRef ref;                ///< unclustered: pointer into primary storage
    uint64_t clustered_offset;  ///< clustered: record id in the copy store
  };

  struct LookupResult {
    std::vector<Candidate> candidates;
    /// B+-tree entries touched by the range scan(s) (logical index I/O).
    uint64_t entries_scanned = 0;
    /// False when the query is deeper than the index covers; the caller
    /// must fall back to a full scan (Algorithm 2 step 1).
    bool covered = true;
  };

  /// Builds the index over `corpus` per `options`. `stats` may be null.
  /// Alongside the B+-tree file at options.path, a metadata sidecar
  /// (options + edge-weight encoding) is written to options.path + ".meta"
  /// so the index can be reopened.
  ///
  /// @pre `corpus` is non-null and outlives the returned index.
  /// @pre options.path names a writable location; an existing file there
  ///      is truncated.
  /// @post on success the B+-tree and meta sidecar are flushed to disk and
  ///       the index is immediately queryable.
  /// @return the opened index, or InvalidArgument (bad options), IOError
  ///         (storage), or Internal (eigensolver) on failure.
  [[nodiscard]] static Result<FixIndex> Build(Corpus* corpus, const IndexOptions& options,
                                BuildStats* stats);

  /// Reopens an index previously built at `path` over the same corpus
  /// (typically one restored with Corpus::Load). The persisted options and
  /// edge-weight encoding are restored exactly; queries probe the on-disk
  /// B+-tree without any rebuild. `page_io_factory` / `wal_io_factory`
  /// (optional) override the page-file and WAL backends, mirroring the
  /// IndexOptions fields of the same names — they are parameters here
  /// because factories are never persisted in the meta.
  ///
  /// Crash recovery happens here: the WAL at path + ".wal" is scanned, a
  /// committed generation newer than the data file's meta page is rolled
  /// forward (adopting the committed root, entry count, document coverage,
  /// and sequence counter), torn tails are discarded, pages unreachable
  /// from the adopted root are recycled (restamped as blank pages if the
  /// crash left them torn), and the log is reset once the recovered state
  /// has been checkpointed into the data file and sidecar.
  ///
  /// `load_spatial_sidecar` gates adoption of the `.spatial` kd-tree
  /// sidecar on a clean open. It is a verification pass in its own right
  /// (full-file CRC + topology walk), so fast opens that skip attach
  /// verification (`Database::OpenOptions::verify_on_attach = false`) skip
  /// it too — probes stay on the B+-tree engine until the next commit
  /// refreshes the snapshot.
  ///
  /// @pre `corpus` is non-null and is the corpus the index was built over.
  /// @return the reopened index, or NotFound (missing file), Corruption
  ///         (checksum or meta damage), or IOError on failure.
  [[nodiscard]] static Result<FixIndex> Open(
      Corpus* corpus, const std::string& path,
      const std::function<std::unique_ptr<PageIo>()>& page_io_factory =
          nullptr,
      const std::function<std::unique_ptr<PageIo>()>& wal_io_factory =
          nullptr,
      bool load_spatial_sidecar = true);

  FixIndex(FixIndex&&) = default;
  FixIndex& operator=(FixIndex&&) = default;

  /// Full Algorithm 2 lookup: decomposes at interior //-edges, probes the
  /// B+-tree per usable sub-twig, and (for whole-document indexes)
  /// intersects candidate documents across sub-twigs.
  ///
  /// @pre `query` has had ResolveLabels run against this index's corpus.
  /// @return the candidate set (covered == false signals the caller must
  ///         full-scan), or Corruption/IOError if a probe page read fails.
  [[nodiscard]] Result<LookupResult> Lookup(const TwigQuery& query);

  /// Probes with a single pure twig (no decomposition). Exposed for tests
  /// and the metrics harnesses.
  ///
  /// `use_root_label` selects whether the root-label feature participates
  /// in pruning. It is sound whenever indexed units are rooted at elements
  /// carrying the pattern's root label: always for depth-limited indexes
  /// (one entry per element), and for whole-document indexes only when the
  /// query is rooted (/a/...) so the pattern root must be the document's
  /// root element. Lookup() picks the sound setting automatically.
  ///
  /// @pre `subtwig` is a pure twig (no interior //-edges) with resolved
  ///      labels.
  /// @return candidates of the single range scan, or Corruption/IOError.
  [[nodiscard]] Result<LookupResult> Probe(const TwigQuery& subtwig,
                             bool use_root_label = true);

  /// Probe with an explicit engine override (A/B benches, parity tests).
  /// ProbeEngine::kAuto — and a forced kSpatial with no resident spatial
  /// structure — resolve to whatever is actually available: the spatial
  /// snapshot when one is attached, the B+-tree otherwise. Both engines
  /// return byte-identical candidate sets; only entries_scanned differs
  /// (B+-tree rows touched vs kd-tree nodes visited).
  [[nodiscard]] Result<LookupResult> ProbeWithEngine(const TwigQuery& subtwig,
                                                     bool use_root_label,
                                                     ProbeEngine engine);

  /// Computes the probe features of a pure twig query (pattern → matrix →
  /// eigenvalues). Exposed for diagnostics.
  ///
  /// @return the feature key, or Internal if the eigensolver fails to
  ///         converge on the query pattern.
  [[nodiscard]] Result<FeatureKey> QueryFeatures(const TwigQuery& subtwig);

  /// Estimates the candidate count of a query without touching candidates,
  /// via per-label equi-depth histograms over λ_max (Section 5's costing
  /// aid). The histogram is built lazily on first use and invalidated by
  /// InsertDocument/RemoveDocument.
  ///
  /// @return the estimate (0 for uncovered queries), or Corruption/IOError
  ///         if the lazy histogram build's tree scan fails.
  [[nodiscard]] Result<uint64_t> EstimateCandidates(const TwigQuery& query);

  /// Incrementally indexes a document that was appended to the corpus
  /// after Build (unclustered indexes only: clustered layouts require the
  /// key-ordered copy store to be rebuilt, the update cost the paper's
  /// introduction charges against clustering indexes).
  ///
  /// Crash-safe and atomic: the new entries are built copy-on-write as
  /// B+-tree generation N+1, made durable by a single fsync'd WAL commit
  /// record, and only then published. A crash at any point leaves the index
  /// recoverable to exactly generation N (no commit record) or exactly
  /// generation N+1 (commit record replayed by Open) — never a torn state.
  /// Concurrent readers keep serving generation N until the publish.
  ///
  /// @pre doc_id is a valid corpus document not yet indexed.
  /// @post on success the commit is checkpointed: the data file's meta page
  ///       and the sidecar carry the new generation (indexed_docs advances)
  ///       and the WAL is reset.
  /// @return OK, NotSupported for clustered indexes, InvalidArgument for a
  ///         doc_id outside the corpus, or the first storage/solver error.
  ///         A WAL append/fsync failure aborts the whole batch (fail-stop:
  ///         an unsynced commit is never acked) and surfaces as IOError so
  ///         Database routes the index into quarantine.
  [[nodiscard]] Status InsertDocument(uint32_t doc_id, BuildStats* stats = nullptr);

  /// Deletes every index entry pointing into `doc_id` (linear scan of the
  /// tree + lazy B+-tree deletes). The document itself stays in the
  /// corpus; callers track liveness. Runs through the same COW batch + WAL
  /// commit protocol as InsertDocument (same atomicity and concurrency
  /// contract).
  ///
  /// @post the candidate-estimate histogram is invalidated.
  /// @return OK (removing an unindexed document is a no-op), or the first
  ///         scan/delete/commit error.
  [[nodiscard]] Status RemoveDocument(uint32_t doc_id);

  /// Integrity audit of the on-disk index: full B+-tree structural walk
  /// (every page read passes through the checksum layer on the way).
  ///
  /// @return OK, or Corruption describing the first violation found.
  [[nodiscard]] Status Verify() { return btree_->VerifyStructure(); }

  uint64_t num_entries() const { return btree_->num_entries(); }
  const IndexOptions& options() const { return options_; }
  Corpus* corpus() { return corpus_; }
  const ValueHasher* value_hasher() const { return value_hasher_.get(); }
  RecordStore* clustered_store() { return &clustered_; }
  BTree* btree() { return btree_.get(); }
  PageFile* page_file() { return file_.get(); }
  /// Documents covered at the last successful meta write
  /// (kIndexedDocsUnknown for indexes persisted by pre-v2 metas).
  uint32_t indexed_docs() const { return indexed_docs_; }
  /// The B+-tree generation currently published to readers.
  uint64_t generation() const { return btree_->generation(); }
  /// The write-ahead log (diagnostics: fixctl, tests).
  const Wal& wal() const { return wal_; }

  /// The currently published spatial probe snapshot (null when none is
  /// resident and probes answer from the B+-tree). Safe from any thread;
  /// the returned structure is immutable and generation-stamped, so a
  /// caller may keep probing it across later commits.
  std::shared_ptr<const SpatialProbe> spatial_probe() const {
    MutexLock lock(*spatial_mu_);
    return spatial_;
  }
  /// Runtime engine selection (benches flip this between quiesced sweeps;
  /// it is NOT safe to call concurrently with probes — the persisted
  /// setting comes from IndexOptions at build time).
  void set_probe_engine(ProbeEngine engine) {
    options_.probe_engine = engine;
  }

  /// On-disk footprint: B+-tree bytes (+ clustered copy store bytes).
  uint64_t BTreeBytes() const { return btree_->SizeBytes(); }
  uint64_t ClusteredBytes() const {
    return clustered_.is_open() ? clustered_.size_bytes() : 0;
  }

 private:
  FixIndex(Corpus* corpus, IndexOptions options)
      : corpus_(corpus), options_(std::move(options)) {}

  // --- construction pipeline (Build only; see DESIGN.md) -------------------

  /// One closing element awaiting entry emission (pipeline stage D).
  struct CloseEvent {
    BisimVertexId vertex = kInvalidVertex;
    NodeRef ref;
  };

  /// Feature computation for one distinct pattern of one document.
  struct PatternWork {
    BisimVertexId vertex = kInvalidVertex;  ///< vertex in the document graph
    /// Depth-limited pattern graph; unset when the whole document graph is
    /// the pattern (depth_limit == 0) or the pattern is oversized.
    std::optional<BisimGraph> pattern;
    std::string signature;  ///< cache key; empty when oversized
    bool oversized = false;
    bool solver_failed = false;
    EigPair eigs;
  };

  /// Per-document pipeline state, filled by PrepareDocument.
  struct DocWork {
    BisimGraph graph;
    std::vector<CloseEvent> closes;      ///< in close (document) order
    std::vector<PatternWork> patterns;   ///< distinct, in first-close order
    int depth = 0;
    size_t vertices = 0;
    size_t edges = 0;
    bool empty = false;  ///< document has no root element
    Status status;       ///< deferred error from the parallel stage
  };

  /// Runs the batched fan-out/intern/solve/emit pipeline over the whole
  /// corpus and bulk-loads the B+-tree (and, for clustered indexes, the
  /// copy store) from the sorted result.
  [[nodiscard]] Status BuildPipeline(BuildStats* stats);

  /// Pipeline stage A, parallel per document: parse, bisimulate, collect
  /// close events, and prepare each distinct pattern (expansion bound,
  /// depth-limited pattern graph, canonical signature). Touches only
  /// read-only index state and `out`.
  void PrepareDocument(uint32_t doc_id, DocWork* out) const;

  /// Pipeline stage C, parallel per pattern: feature-cache lookup, or a
  /// skew-matrix eigensolve against the frozen edge encoder on a miss.
  /// Touches only read-only index state, `work`, and the sharded cache.
  void SolvePattern(const BisimGraph& doc_graph, PatternWork* work,
                    FeatureCache* cache) const;

  /// Writes the metadata sidecar (options + encoder + seq counter).
  [[nodiscard]] Status WriteMeta() const;

  /// All entries carrying `label` (the wildcard degradation path).
  [[nodiscard]] Result<LookupResult> LabelOnlyScan(LabelId label);

  /// Computes (memoized on the vertex) the features of the depth-limited
  /// subpattern rooted at `vertex` of `graph`.
  [[nodiscard]] Result<EigPair> PatternFeatures(BisimGraph* graph, BisimVertexId vertex,
                                  int depth_limit, BuildStats* stats);

  /// Features of a whole (already depth-bounded) pattern graph.
  [[nodiscard]] Result<EigPair> GraphFeatures(const BisimGraph& graph, BuildStats* stats);

  /// Runs Algorithm 1's per-document pass (bisimulation build + feature
  /// solve) for one document, appending the encoded (key, value) entries —
  /// with sequence numbers assigned — to `kv`. Nothing touches the tree;
  /// the caller feeds the batch to CommitBatch.
  [[nodiscard]] Status CollectEntries(
      uint32_t doc_id, BuildStats* stats,
      std::vector<std::pair<std::string, std::string>>* kv);

  /// The single write path: applies `inserts` then `deletes` inside one COW
  /// batch and drives the commit protocol — PrepareCommit (flush + data
  /// fsync), WAL append (fsync'd; failure aborts the batch), publish,
  /// checkpoint, sidecar rewrite, WAL reset. On success indexed_docs_ is
  /// `new_indexed_docs`.
  [[nodiscard]] Status CommitBatch(
      const std::vector<std::pair<std::string, std::string>>& inserts,
      const std::vector<std::pair<std::string, std::string>>& deletes,
      uint32_t new_indexed_docs);

  /// The B+-tree probe body (range scan + per-row filters) for an already
  /// solved query feature key.
  [[nodiscard]] Result<LookupResult> ProbeBTree(const FeatureKey& probe,
                                                bool use_root_label);

  /// The kd-tree probe body against one pinned spatial snapshot; filter
  /// bounds are converted with the same expressions ProbeBTree encodes, so
  /// the candidate vectors come out byte-identical.
  LookupResult ProbeSpatial(const SpatialProbe& spatial,
                            const FeatureKey& probe, bool use_root_label);

  /// Publishes `probe` as the spatial snapshot readers copy.
  void AttachSpatial(std::shared_ptr<const SpatialProbe> probe);

  /// Rebuilds the spatial structure from the current B+-tree generation,
  /// publishes it, and rewrites the sidecar. Never fails the caller: on any
  /// error the snapshot is cleared (probes fall back to the B+-tree) and
  /// fix.index.spatial.sidecar_failures ticks.
  void RefreshSpatial();

  /// Persists the current snapshot at path + ".spatial" (best effort, same
  /// failure policy as RefreshSpatial).
  void PersistSpatial();

  /// Recovery sweep: walks the tree from the (possibly just-adopted) root,
  /// restamps unreachable pages whose blocks fail verification (torn relics
  /// of an uncommitted generation) as blank pages, and hands every
  /// unreachable page to the B+-tree's reuse list.
  [[nodiscard]] Status ReclaimUnreachable();

  Corpus* corpus_;
  IndexOptions options_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> btree_;
  /// Write-ahead log at path + ".wal"; owned exclusively by the writer.
  Wal wal_;
  RecordStore clustered_;
  std::unique_ptr<ValueHasher> value_hasher_;
  // `encoder_` is deliberately NOT FIX_GUARDED_BY(*encoder_mu_): Build and
  // InsertDocument touch it lock-free under the writer-exclusive contract;
  // only concurrent query-time interning (QueryFeatures) must serialize.
  EdgeEncoder encoder_;
  /// Serializes query-time interning into encoder_ (see the class comment).
  /// Heap-allocated because FixIndex keeps its defaulted move operations.
  // LOCK-ORDER: 8 FixIndex::encoder_mu_
  std::unique_ptr<Mutex> encoder_mu_ = std::make_unique<Mutex>();
  // `spatial_` is deliberately NOT FIX_GUARDED_BY(*spatial_mu_): the lock
  // only covers the shared_ptr copy/swap (see the class comment); the
  // pointee is immutable. Heap-allocated for the same defaulted-move
  // reason as encoder_mu_. Never held together with any other lock.
  // LOCK-ORDER: 8 FixIndex::spatial_mu_
  std::unique_ptr<Mutex> spatial_mu_ = std::make_unique<Mutex>();
  /// Per-label kd-trees over the current committed generation; null means
  /// probes answer from the B+-tree (missing/corrupt sidecar, or a refresh
  /// failure after a commit).
  std::shared_ptr<const SpatialProbe> spatial_;
  std::unique_ptr<FeatureHistogram> histogram_;  // lazy; see EstimateCandidates
  uint32_t next_seq_ = 0;
  uint32_t indexed_docs_ = 0;  // see indexed_docs()
};

}  // namespace fix

#endif  // FIX_CORE_FIX_INDEX_H_
