#include "core/histogram.h"

#include <algorithm>

#include "core/feature.h"

namespace fix {

Result<FeatureHistogram> FeatureHistogram::FromBTree(BTree* btree,
                                                     size_t buckets) {
  if (buckets < 2) return Status::InvalidArgument("need >= 2 buckets");
  FeatureHistogram hist;

  // First pass could be avoided by buffering per label; entries per label
  // arrive contiguously in key order, so buffer one label at a time.
  BTree::Iterator it;
  FIX_ASSIGN_OR_RETURN(it, btree->SeekFirst());
  LabelId current = kInvalidLabel;
  std::vector<double> lambdas;  // sorted by construction (scan order)

  auto flush = [&]() {
    if (current == kInvalidLabel || lambdas.empty()) return;
    LabelHistogram& lh = hist.per_label_[current];
    lh.count = lambdas.size();
    lh.boundaries.clear();
    for (size_t b = 1; b <= buckets; ++b) {
      size_t idx = (lambdas.size() * b) / buckets;
      if (idx > 0) --idx;
      lh.boundaries.push_back(lambdas[idx]);
    }
    lambdas.clear();
  };

  while (it.Valid()) {
    FeatureKey key = DecodeFeatureKey(it.key());
    if (key.root_label != current) {
      flush();
      current = key.root_label;
    }
    lambdas.push_back(key.lambda_max);
    ++hist.total_;
    FIX_RETURN_IF_ERROR(it.Next());
  }
  flush();
  return hist;
}

uint64_t FeatureHistogram::EstimateGreaterEqual(LabelId label,
                                                double lambda) const {
  auto it = per_label_.find(label);
  if (it == per_label_.end()) return 0;
  const LabelHistogram& lh = it->second;
  // boundaries[i] is the upper edge of bucket i; each bucket holds
  // count / B entries. Entries with λ_max >= lambda live in the buckets
  // whose upper edge is >= lambda (partially, for the first such bucket —
  // we count it fully, keeping the estimate conservative for candidacy).
  size_t buckets = lh.boundaries.size();
  size_t first = std::lower_bound(lh.boundaries.begin(), lh.boundaries.end(),
                                  lambda) -
                 lh.boundaries.begin();
  if (first >= buckets) return 0;
  return lh.count * (buckets - first) / buckets;
}

uint64_t FeatureHistogram::EstimateGreaterEqualAllLabels(
    double lambda) const {
  uint64_t total = 0;
  for (const auto& [label, lh] : per_label_) {
    (void)lh;
    total += EstimateGreaterEqual(label, lambda);
  }
  return total;
}

uint64_t FeatureHistogram::LabelCount(LabelId label) const {
  auto it = per_label_.find(label);
  return it == per_label_.end() ? 0 : it->second.count;
}

}  // namespace fix
