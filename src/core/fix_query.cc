#include "core/fix_query.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/metrics_registry.h"
#include "common/timer.h"
#include "common/trace.h"
#include "query/match.h"
#include "xml/serializer.h"

namespace fix {

namespace {

/// Whether the query's first step must bind directly under the document
/// node (a rooted query: /a/...). Candidates violating this are rejected
/// before matching.
bool IsRootedQuery(const TwigQuery& q) {
  return q.steps[q.root].axis == Axis::kChild;
}

// Query-path metrics (docs/OBSERVABILITY.md). One RecordExecStats call per
// finished execution keeps the hot refinement loops free of atomics.
struct QueryMetrics {
  Counter* queries;
  Counter* fullscans;
  Counter* uncovered;
  Counter* candidates;
  Counter* producing;
  Counter* results;
  Counter* entries_scanned;
  Counter* nodes_visited;
  Counter* random_reads;
  Counter* sequential_bytes;
  Histogram* lookup_us;
  Histogram* refine_us;
};

const QueryMetrics& GetQueryMetrics() {
  static const QueryMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Instance();
    QueryMetrics qm;
    qm.queries = r.FindOrCreateCounter("fix.query.count", "ops",
                                       "queries executed (any path)");
    qm.fullscans = r.FindOrCreateCounter(
        "fix.query.fullscan.count", "ops",
        "queries answered by the navigational full scan");
    qm.uncovered = r.FindOrCreateCounter(
        "fix.query.uncovered.count", "ops",
        "queries deeper than the index's depth limit");
    // Degradation is counted by fix.storage.degraded_queries (database.cc):
    // the Database decides to degrade after this layer's stats are already
    // recorded, so a counter here would never move.
    qm.candidates = r.FindOrCreateCounter(
        "fix.query.candidates.total", "entries",
        "index-probe candidates across all queries (cdt)");
    qm.producing = r.FindOrCreateCounter(
        "fix.query.producing.total", "entries",
        "candidates that produced >= 1 result (rst)");
    qm.results = r.FindOrCreateCounter("fix.query.results.total", "nodes",
                                       "result bindings returned");
    qm.entries_scanned = r.FindOrCreateCounter(
        "fix.query.entries_scanned.total", "entries",
        "B+-tree leaf entries touched during probes");
    qm.nodes_visited = r.FindOrCreateCounter(
        "fix.query.nodes_visited.total", "nodes",
        "matcher nodes visited during refinement");
    qm.random_reads = r.FindOrCreateCounter(
        "fix.query.random_reads.total", "ops",
        "primary-storage pointer dereferences during refinement");
    qm.sequential_bytes = r.FindOrCreateCounter(
        "fix.query.sequential_bytes.total", "bytes",
        "clustered-store bytes read during refinement");
    qm.lookup_us = r.FindOrCreateHistogram(
        "fix.query.lookup_us", "us",
        "candidate-selection (index probe) latency");
    qm.refine_us = r.FindOrCreateHistogram("fix.query.refine_us", "us",
                                           "refinement latency");
    return qm;
  }();
  return m;
}

}  // namespace

void RecordExecStats(const ExecStats& stats) {
  const QueryMetrics& m = GetQueryMetrics();
  m.queries->Increment();
  if (!stats.used_index) m.fullscans->Increment();
  if (!stats.covered) m.uncovered->Increment();
  if (stats.used_index) m.candidates->Add(stats.candidates);
  if (stats.producing_valid) m.producing->Add(stats.producing);
  m.results->Add(stats.result_count);
  m.entries_scanned->Add(stats.entries_scanned);
  m.nodes_visited->Add(stats.nodes_visited);
  m.random_reads->Add(stats.random_reads);
  m.sequential_bytes->Add(stats.sequential_bytes);
  m.lookup_us->Record(static_cast<uint64_t>(stats.lookup_ms * 1000.0));
  m.refine_us->Record(static_cast<uint64_t>(stats.refine_ms * 1000.0));
}

Result<ExecStats> FixQueryProcessor::Execute(const TwigQuery& query,
                                             std::vector<NodeRef>* results,
                                             RefineMode mode) {
  if (results != nullptr) results->clear();
  TraceSpan span("query.execute");
  Timer timer;
  FixIndex::LookupResult lookup;
  {
    TraceSpan lookup_span("query.lookup");
    auto lookup_or = index_->Lookup(query);
    if (!lookup_or.ok()) return lookup_or.status();
    lookup = std::move(lookup_or).value();
    lookup_span.AddAttr("candidates",
                        static_cast<uint64_t>(lookup.candidates.size()));
    lookup_span.AddAttr("entries_scanned", lookup.entries_scanned);
  }
  if (!lookup.covered) {
    // Algorithm 2 step 1 failed: the optimizer falls back to the
    // navigational operator over the whole database.
    span.AddAttr("path", "fullscan");
    return FullScan(query, results);
  }
  ExecStats stats;
  stats.lookup_ms = timer.ElapsedMillis();
  stats.total_entries = index_->num_entries();
  stats.candidates = lookup.candidates.size();
  stats.entries_scanned = lookup.entries_scanned;

  timer.Reset();
  {
    TraceSpan refine_span("query.refine");
    FIX_RETURN_IF_ERROR(
        RefineCandidates(query, lookup.candidates, mode, &stats, results));
    refine_span.AddAttr("nodes_visited", stats.nodes_visited);
    refine_span.AddAttr("results", stats.result_count);
  }
  stats.refine_ms = timer.ElapsedMillis();
  RecordExecStats(stats);
  return stats;
}

Status FixQueryProcessor::RefineCandidates(
    const TwigQuery& query,
    const std::vector<FixIndex::Candidate>& candidates, RefineMode mode,
    ExecStats* stats, std::vector<NodeRef>* results) {
  const IndexOptions& options = index_->options();
  const bool rooted = IsRootedQuery(query);
  std::set<std::pair<uint32_t, NodeId>> dedup;

  // Group candidates by document so the matcher memo is shared.
  std::vector<FixIndex::Candidate> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(),
            [](const FixIndex::Candidate& a, const FixIndex::Candidate& b) {
              return a.ref.doc_id < b.ref.doc_id;
            });

  if (mode == RefineMode::kBatch && !options.clustered &&
      options.depth_limit > 0) {
    // One navigational pass per document, frontier seeded with that
    // document's candidates.
    stats->producing_valid = false;
    stats->random_reads = sorted.size();  // pointer dereferences
    size_t i = 0;
    while (i < sorted.size()) {
      uint32_t doc_id = sorted[i].ref.doc_id;
      const Document& doc = corpus_->doc(doc_id);
      std::vector<NodeId> contexts;
      for (; i < sorted.size() && sorted[i].ref.doc_id == doc_id; ++i) {
        if (rooted && doc.parent(sorted[i].ref.node_id) != 0) continue;
        contexts.push_back(sorted[i].ref.node_id);
      }
      TwigMatcher matcher(&doc);
      std::vector<NodeId> bindings = matcher.EvaluateAtMany(contexts, query);
      stats->nodes_visited += matcher.nodes_visited();
      for (NodeId b : bindings) {
        if (dedup.insert({doc_id, b}).second && results != nullptr) {
          results->push_back({doc_id, b});
        }
      }
    }
    stats->result_count = dedup.size();
    return Status::OK();
  }

  uint32_t current_doc = UINT32_MAX;
  std::unique_ptr<TwigMatcher> matcher;
  bool doc_unit = false;  // candidate granularity for the current document

  for (const FixIndex::Candidate& c : sorted) {
    const Document& doc = corpus_->doc(c.ref.doc_id);
    if (c.ref.doc_id != current_doc) {
      current_doc = c.ref.doc_id;
      matcher = std::make_unique<TwigMatcher>(&doc);
      doc_unit = options.depth_limit == 0;
    }

    std::vector<NodeId> bindings;
    if (options.clustered) {
      // Clustered refinement reads the subtree copy (sequential I/O — the
      // copies were laid out in key order) and matches on the copy.
      std::string record;
      FIX_ASSIGN_OR_RETURN(record,
                           index_->clustered_store()->Read(
                               RecordId{c.clustered_offset}));
      stats->sequential_bytes += record.size();
      Document copy;
      FIX_ASSIGN_OR_RETURN(copy, DecodeDocument(record));
      TwigMatcher copy_matcher(&copy);
      if (doc_unit) {
        bindings = copy_matcher.Evaluate(query);
      } else {
        if (rooted && doc.parent(c.ref.node_id) != 0) {
          // /-rooted query: the candidate must be the document's root
          // element (checked against primary metadata, not the copy).
          continue;
        }
        bindings = copy_matcher.EvaluateAt(copy.root_element(), query);
      }
      stats->nodes_visited += copy_matcher.nodes_visited();
      if (!bindings.empty()) {
        ++stats->producing;
        stats->result_count += bindings.size();
      }
      continue;
    }

    // Unclustered: dereferencing the pointer into primary storage is one
    // would-be random I/O per candidate; we account for it in random_reads
    // without issuing a syscall so that the timed path compares engines on
    // equal (in-memory) footing. See EXPERIMENTS.md for the I/O analysis.
    ++stats->random_reads;
    uint64_t visited_before = matcher->nodes_visited();
    if (doc_unit) {
      bindings = matcher->Evaluate(query);
    } else {
      if (rooted && doc.parent(c.ref.node_id) != 0) continue;
      bindings = matcher->EvaluateAt(c.ref.node_id, query);
    }
    stats->nodes_visited += matcher->nodes_visited() - visited_before;
    if (!bindings.empty()) ++stats->producing;
    for (NodeId b : bindings) {
      if (dedup.insert({c.ref.doc_id, b}).second) {
        if (results != nullptr) results->push_back({c.ref.doc_id, b});
      }
    }
  }
  if (!options.clustered) {
    stats->result_count = dedup.size();
  }
  return Status::OK();
}

Result<ExecStats> FullScanExecute(Corpus* corpus, const TwigQuery& query,
                                  std::vector<NodeRef>* results,
                                  uint64_t total_entries) {
  if (results != nullptr) results->clear();
  TraceSpan span("query.fullscan");
  ExecStats stats;
  stats.covered = false;
  stats.used_index = false;
  stats.total_entries = total_entries;
  stats.candidates = stats.total_entries;  // nothing pruned
  Timer timer;
  for (uint32_t d = 0; d < corpus->num_docs(); ++d) {
    TwigMatcher matcher(&corpus->doc(d));
    std::vector<NodeId> bindings = matcher.Evaluate(query);
    stats.nodes_visited += matcher.nodes_visited();
    stats.result_count += bindings.size();
    if (!bindings.empty()) ++stats.producing;
    if (results != nullptr) {
      for (NodeId b : bindings) results->push_back({d, b});
    }
  }
  stats.refine_ms = timer.ElapsedMillis();
  RecordExecStats(stats);
  return stats;
}

Result<ExecStats> FixQueryProcessor::FullScan(const TwigQuery& query,
                                              std::vector<NodeRef>* results) {
  return FullScanExecute(corpus_, query, results, index_->num_entries());
}

}  // namespace fix
