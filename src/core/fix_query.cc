#include "core/fix_query.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/timer.h"
#include "query/match.h"
#include "xml/serializer.h"

namespace fix {

namespace {

/// Whether the query's first step must bind directly under the document
/// node (a rooted query: /a/...). Candidates violating this are rejected
/// before matching.
bool IsRootedQuery(const TwigQuery& q) {
  return q.steps[q.root].axis == Axis::kChild;
}

}  // namespace

Result<ExecStats> FixQueryProcessor::Execute(const TwigQuery& query,
                                             std::vector<NodeRef>* results,
                                             RefineMode mode) {
  if (results != nullptr) results->clear();
  Timer timer;
  FixIndex::LookupResult lookup;
  FIX_ASSIGN_OR_RETURN(lookup, index_->Lookup(query));
  if (!lookup.covered) {
    // Algorithm 2 step 1 failed: the optimizer falls back to the
    // navigational operator over the whole database.
    return FullScan(query, results);
  }
  ExecStats stats;
  stats.lookup_ms = timer.ElapsedMillis();
  stats.total_entries = index_->num_entries();
  stats.candidates = lookup.candidates.size();
  stats.entries_scanned = lookup.entries_scanned;

  timer.Reset();
  FIX_RETURN_IF_ERROR(
      RefineCandidates(query, lookup.candidates, mode, &stats, results));
  stats.refine_ms = timer.ElapsedMillis();
  return stats;
}

Status FixQueryProcessor::RefineCandidates(
    const TwigQuery& query,
    const std::vector<FixIndex::Candidate>& candidates, RefineMode mode,
    ExecStats* stats, std::vector<NodeRef>* results) {
  const IndexOptions& options = index_->options();
  const bool rooted = IsRootedQuery(query);
  std::set<std::pair<uint32_t, NodeId>> dedup;

  // Group candidates by document so the matcher memo is shared.
  std::vector<FixIndex::Candidate> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(),
            [](const FixIndex::Candidate& a, const FixIndex::Candidate& b) {
              return a.ref.doc_id < b.ref.doc_id;
            });

  if (mode == RefineMode::kBatch && !options.clustered &&
      options.depth_limit > 0) {
    // One navigational pass per document, frontier seeded with that
    // document's candidates.
    stats->producing_valid = false;
    stats->random_reads = sorted.size();  // pointer dereferences
    size_t i = 0;
    while (i < sorted.size()) {
      uint32_t doc_id = sorted[i].ref.doc_id;
      const Document& doc = corpus_->doc(doc_id);
      std::vector<NodeId> contexts;
      for (; i < sorted.size() && sorted[i].ref.doc_id == doc_id; ++i) {
        if (rooted && doc.parent(sorted[i].ref.node_id) != 0) continue;
        contexts.push_back(sorted[i].ref.node_id);
      }
      TwigMatcher matcher(&doc);
      std::vector<NodeId> bindings = matcher.EvaluateAtMany(contexts, query);
      stats->nodes_visited += matcher.nodes_visited();
      for (NodeId b : bindings) {
        if (dedup.insert({doc_id, b}).second && results != nullptr) {
          results->push_back({doc_id, b});
        }
      }
    }
    stats->result_count = dedup.size();
    return Status::OK();
  }

  uint32_t current_doc = UINT32_MAX;
  std::unique_ptr<TwigMatcher> matcher;
  bool doc_unit = false;  // candidate granularity for the current document

  for (const FixIndex::Candidate& c : sorted) {
    const Document& doc = corpus_->doc(c.ref.doc_id);
    if (c.ref.doc_id != current_doc) {
      current_doc = c.ref.doc_id;
      matcher = std::make_unique<TwigMatcher>(&doc);
      doc_unit = options.depth_limit == 0;
    }

    std::vector<NodeId> bindings;
    if (options.clustered) {
      // Clustered refinement reads the subtree copy (sequential I/O — the
      // copies were laid out in key order) and matches on the copy.
      std::string record;
      FIX_ASSIGN_OR_RETURN(record,
                           index_->clustered_store()->Read(
                               RecordId{c.clustered_offset}));
      stats->sequential_bytes += record.size();
      Document copy;
      FIX_ASSIGN_OR_RETURN(copy, DecodeDocument(record));
      TwigMatcher copy_matcher(&copy);
      if (doc_unit) {
        bindings = copy_matcher.Evaluate(query);
      } else {
        if (rooted && doc.parent(c.ref.node_id) != 0) {
          // /-rooted query: the candidate must be the document's root
          // element (checked against primary metadata, not the copy).
          continue;
        }
        bindings = copy_matcher.EvaluateAt(copy.root_element(), query);
      }
      stats->nodes_visited += copy_matcher.nodes_visited();
      if (!bindings.empty()) {
        ++stats->producing;
        stats->result_count += bindings.size();
      }
      continue;
    }

    // Unclustered: dereferencing the pointer into primary storage is one
    // would-be random I/O per candidate; we account for it in random_reads
    // without issuing a syscall so that the timed path compares engines on
    // equal (in-memory) footing. See EXPERIMENTS.md for the I/O analysis.
    ++stats->random_reads;
    uint64_t visited_before = matcher->nodes_visited();
    if (doc_unit) {
      bindings = matcher->Evaluate(query);
    } else {
      if (rooted && doc.parent(c.ref.node_id) != 0) continue;
      bindings = matcher->EvaluateAt(c.ref.node_id, query);
    }
    stats->nodes_visited += matcher->nodes_visited() - visited_before;
    if (!bindings.empty()) ++stats->producing;
    for (NodeId b : bindings) {
      if (dedup.insert({c.ref.doc_id, b}).second) {
        if (results != nullptr) results->push_back({c.ref.doc_id, b});
      }
    }
  }
  if (!options.clustered) {
    stats->result_count = dedup.size();
  }
  return Status::OK();
}

Result<ExecStats> FullScanExecute(Corpus* corpus, const TwigQuery& query,
                                  std::vector<NodeRef>* results,
                                  uint64_t total_entries) {
  if (results != nullptr) results->clear();
  ExecStats stats;
  stats.covered = false;
  stats.used_index = false;
  stats.total_entries = total_entries;
  stats.candidates = stats.total_entries;  // nothing pruned
  Timer timer;
  for (uint32_t d = 0; d < corpus->num_docs(); ++d) {
    TwigMatcher matcher(&corpus->doc(d));
    std::vector<NodeId> bindings = matcher.Evaluate(query);
    stats.nodes_visited += matcher.nodes_visited();
    stats.result_count += bindings.size();
    if (!bindings.empty()) ++stats.producing;
    if (results != nullptr) {
      for (NodeId b : bindings) results->push_back({d, b});
    }
  }
  stats.refine_ms = timer.ElapsedMillis();
  return stats;
}

Result<ExecStats> FixQueryProcessor::FullScan(const TwigQuery& query,
                                              std::vector<NodeRef>* results) {
  return FullScanExecute(corpus_, query, results, index_->num_entries());
}

}  // namespace fix
