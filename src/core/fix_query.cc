#include "core/fix_query.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/metrics_registry.h"
#include "common/timer.h"
#include "common/trace.h"
#include "query/match.h"
#include "xml/serializer.h"

namespace fix {

namespace {

/// Whether the query's first step must bind directly under the document
/// node (a rooted query: /a/...). Candidates violating this are rejected
/// before matching.
bool IsRootedQuery(const TwigQuery& q) {
  return q.steps[q.root].axis == Axis::kChild;
}

// Query-path metrics (docs/OBSERVABILITY.md). One RecordExecStats call per
// finished execution keeps the hot refinement loops free of atomics.
struct QueryMetrics {
  Counter* queries;
  Counter* fullscans;
  Counter* uncovered;
  Counter* candidates;
  Counter* producing;
  Counter* results;
  Counter* entries_scanned;
  Counter* nodes_visited;
  Counter* random_reads;
  Counter* sequential_bytes;
  Histogram* lookup_us;
  Histogram* refine_us;
};

const QueryMetrics& GetQueryMetrics() {
  static const QueryMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Instance();
    QueryMetrics qm;
    qm.queries = r.FindOrCreateCounter("fix.query.count", "ops",
                                       "queries executed (any path)");
    qm.fullscans = r.FindOrCreateCounter(
        "fix.query.fullscan.count", "ops",
        "queries answered by the navigational full scan");
    qm.uncovered = r.FindOrCreateCounter(
        "fix.query.uncovered.count", "ops",
        "queries deeper than the index's depth limit");
    // Degradation is counted by fix.storage.degraded_queries (database.cc):
    // the Database decides to degrade after this layer's stats are already
    // recorded, so a counter here would never move.
    qm.candidates = r.FindOrCreateCounter(
        "fix.query.candidates.total", "entries",
        "index-probe candidates across all queries (cdt)");
    qm.producing = r.FindOrCreateCounter(
        "fix.query.producing.total", "entries",
        "candidates that produced >= 1 result (rst)");
    qm.results = r.FindOrCreateCounter("fix.query.results.total", "nodes",
                                       "result bindings returned");
    qm.entries_scanned = r.FindOrCreateCounter(
        "fix.query.entries_scanned.total", "entries",
        "B+-tree leaf entries touched during probes");
    qm.nodes_visited = r.FindOrCreateCounter(
        "fix.query.nodes_visited.total", "nodes",
        "matcher nodes visited during refinement");
    qm.random_reads = r.FindOrCreateCounter(
        "fix.query.random_reads.total", "ops",
        "primary-storage pointer dereferences during refinement");
    qm.sequential_bytes = r.FindOrCreateCounter(
        "fix.query.sequential_bytes.total", "bytes",
        "clustered-store bytes read during refinement");
    qm.lookup_us = r.FindOrCreateHistogram(
        "fix.query.lookup_us", "us",
        "candidate-selection (index probe) latency");
    qm.refine_us = r.FindOrCreateHistogram("fix.query.refine_us", "us",
                                           "refinement latency");
    return qm;
  }();
  return m;
}

}  // namespace

void RecordExecStats(const ExecStats& stats) {
  const QueryMetrics& m = GetQueryMetrics();
  m.queries->Increment();
  if (!stats.used_index) m.fullscans->Increment();
  if (!stats.covered) m.uncovered->Increment();
  if (stats.used_index) m.candidates->Add(stats.candidates);
  if (stats.producing_valid) m.producing->Add(stats.producing);
  m.results->Add(stats.result_count);
  m.entries_scanned->Add(stats.entries_scanned);
  m.nodes_visited->Add(stats.nodes_visited);
  m.random_reads->Add(stats.random_reads);
  m.sequential_bytes->Add(stats.sequential_bytes);
  m.lookup_us->Record(static_cast<uint64_t>(stats.lookup_ms * 1000.0));
  m.refine_us->Record(static_cast<uint64_t>(stats.refine_ms * 1000.0));
}

Result<ExecStats> FixQueryProcessor::Execute(const TwigQuery& query,
                                             std::vector<NodeRef>* results,
                                             RefineMode mode) {
  if (results != nullptr) results->clear();
  TraceSpan span("query.execute");
  Timer timer;
  FixIndex::LookupResult lookup;
  {
    TraceSpan lookup_span("query.lookup");
    auto lookup_or = index_->Lookup(query);
    if (!lookup_or.ok()) return lookup_or.status();
    lookup = std::move(lookup_or).value();
    lookup_span.AddAttr("candidates",
                        static_cast<uint64_t>(lookup.candidates.size()));
    lookup_span.AddAttr("entries_scanned", lookup.entries_scanned);
  }
  if (!lookup.covered) {
    // Algorithm 2 step 1 failed: the optimizer falls back to the
    // navigational operator over the whole database. The lookup-side costs
    // paid before the decision (depth check, any partial probes) ride along
    // in the seed so the fallback's stats don't report zero lookup cost.
    span.AddAttr("path", "fullscan");
    ExecStats seed;
    seed.lookup_ms = timer.ElapsedMillis();
    seed.entries_scanned = lookup.entries_scanned;
    return FullScan(query, results, &seed);
  }
  ExecStats stats;
  stats.lookup_ms = timer.ElapsedMillis();
  stats.total_entries = index_->num_entries();
  stats.candidates = lookup.candidates.size();
  stats.entries_scanned = lookup.entries_scanned;

  timer.Reset();
  {
    TraceSpan refine_span("query.refine");
    FIX_RETURN_IF_ERROR(
        RefineCandidates(query, lookup.candidates, mode, &stats, results));
    refine_span.AddAttr("nodes_visited", stats.nodes_visited);
    refine_span.AddAttr("results", stats.result_count);
  }
  stats.refine_ms = timer.ElapsedMillis();
  RecordExecStats(stats);
  return stats;
}

void FixQueryProcessor::RefineDocGroup(
    const TwigQuery& query, const std::vector<FixIndex::Candidate>& sorted,
    size_t begin, size_t end, RefineMode mode, bool rooted,
    GroupOutcome* out) {
  const IndexOptions& options = index_->options();
  const uint32_t doc_id = sorted[begin].ref.doc_id;
  const Document& doc = corpus_->doc(doc_id);

  if (mode == RefineMode::kBatch && !options.clustered &&
      options.depth_limit > 0) {
    // One navigational pass over this document, frontier seeded with its
    // whole candidate group.
    std::vector<NodeId> contexts;
    contexts.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      if (rooted && doc.parent(sorted[i].ref.node_id) != 0) continue;
      contexts.push_back(sorted[i].ref.node_id);
    }
    TwigMatcher matcher(&doc);
    std::vector<NodeId> bindings = matcher.EvaluateAtMany(contexts, query);
    out->nodes_visited = matcher.nodes_visited();
    std::unordered_set<NodeId> dedup;
    dedup.reserve(bindings.size());
    out->results.reserve(bindings.size());
    for (NodeId b : bindings) {
      if (dedup.insert(b).second) out->results.push_back({doc_id, b});
    }
    out->result_count = dedup.size();
    return;
  }

  const bool doc_unit = options.depth_limit == 0;
  TwigMatcher matcher(&doc);
  std::unordered_set<NodeId> dedup;

  for (size_t i = begin; i < end; ++i) {
    const FixIndex::Candidate& c = sorted[i];
    std::vector<NodeId> bindings;
    if (options.clustered) {
      // Clustered refinement reads the subtree copy (sequential I/O — the
      // copies were laid out in key order) and matches on the copy.
      auto record_or =
          index_->clustered_store()->Read(RecordId{c.clustered_offset});
      if (!record_or.ok()) {
        out->status = record_or.status();
        return;
      }
      std::string record = std::move(record_or).value();
      out->sequential_bytes += record.size();
      auto copy_or = DecodeDocument(record);
      if (!copy_or.ok()) {
        out->status = copy_or.status();
        return;
      }
      Document copy = std::move(copy_or).value();
      TwigMatcher copy_matcher(&copy);
      if (doc_unit) {
        bindings = copy_matcher.Evaluate(query);
      } else {
        if (rooted && doc.parent(c.ref.node_id) != 0) {
          // /-rooted query: the candidate must be the document's root
          // element (checked against primary metadata, not the copy).
          continue;
        }
        bindings = copy_matcher.EvaluateAt(copy.root_element(), query);
      }
      out->nodes_visited += copy_matcher.nodes_visited();
      if (!bindings.empty()) {
        ++out->producing;
        out->result_count += bindings.size();
      }
      continue;
    }

    // Unclustered: dereferencing the pointer into primary storage is one
    // would-be random I/O per candidate; we account for it in random_reads
    // without issuing a syscall so that the timed path compares engines on
    // equal (in-memory) footing. See EXPERIMENTS.md for the I/O analysis.
    ++out->random_reads;
    uint64_t visited_before = matcher.nodes_visited();
    if (doc_unit) {
      bindings = matcher.Evaluate(query);
    } else {
      if (rooted && doc.parent(c.ref.node_id) != 0) continue;
      bindings = matcher.EvaluateAt(c.ref.node_id, query);
    }
    out->nodes_visited += matcher.nodes_visited() - visited_before;
    if (!bindings.empty()) ++out->producing;
    for (NodeId b : bindings) {
      if (dedup.insert(b).second) out->results.push_back({doc_id, b});
    }
  }
  if (!options.clustered) out->result_count = dedup.size();
}

Status FixQueryProcessor::RefineCandidates(
    const TwigQuery& query,
    const std::vector<FixIndex::Candidate>& candidates, RefineMode mode,
    ExecStats* stats, std::vector<NodeRef>* results) {
  const IndexOptions& options = index_->options();
  const bool rooted = IsRootedQuery(query);

  // Group candidates by document so the matcher memo is shared; the groups
  // are also the parallel work units (documents are disjoint, so per-group
  // dedup + in-order merge is equivalent to the sequential global dedup).
  std::vector<FixIndex::Candidate> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(),
            [](const FixIndex::Candidate& a, const FixIndex::Candidate& b) {
              return a.ref.doc_id < b.ref.doc_id;
            });

  if (mode == RefineMode::kBatch && !options.clustered &&
      options.depth_limit > 0) {
    stats->producing_valid = false;
    stats->random_reads = sorted.size();  // pointer dereferences
  }

  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) per doc
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i + 1;
    while (j < sorted.size() &&
           sorted[j].ref.doc_id == sorted[i].ref.doc_id) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
  }

  std::vector<GroupOutcome> outcomes(groups.size());
  ParallelFor(pool_, groups.size(), [&](size_t g) {
    RefineDocGroup(query, sorted, groups[g].first, groups[g].second, mode,
                   rooted, &outcomes[g]);
  });

  size_t total_results = 0;
  for (const GroupOutcome& o : outcomes) {
    FIX_RETURN_IF_ERROR(o.status);
    total_results += o.results.size();
  }
  if (results != nullptr) results->reserve(results->size() + total_results);
  for (const GroupOutcome& o : outcomes) {
    stats->nodes_visited += o.nodes_visited;
    stats->producing += o.producing;
    stats->result_count += o.result_count;
    stats->random_reads += o.random_reads;
    stats->sequential_bytes += o.sequential_bytes;
    if (results != nullptr) {
      results->insert(results->end(), o.results.begin(), o.results.end());
    }
  }
  return Status::OK();
}

Result<ExecStats> FullScanExecute(Corpus* corpus, const TwigQuery& query,
                                  std::vector<NodeRef>* results,
                                  uint64_t total_entries, ThreadPool* pool,
                                  const ExecStats* seed) {
  if (results != nullptr) results->clear();
  TraceSpan span("query.fullscan");
  ExecStats stats;
  if (seed != nullptr) stats = *seed;
  stats.covered = false;
  stats.used_index = false;
  stats.total_entries = total_entries;
  stats.candidates = stats.total_entries;  // nothing pruned
  Timer timer;
  const uint32_t num_docs = corpus->num_docs();
  std::vector<std::vector<NodeId>> per_doc(num_docs);
  std::vector<uint64_t> visited(num_docs, 0);
  ParallelFor(pool, num_docs, [&](size_t d) {
    TwigMatcher matcher(&corpus->doc(static_cast<uint32_t>(d)));
    per_doc[d] = matcher.Evaluate(query);
    visited[d] = matcher.nodes_visited();
  });
  for (uint32_t d = 0; d < num_docs; ++d) {
    stats.nodes_visited += visited[d];
    stats.result_count += per_doc[d].size();
    if (!per_doc[d].empty()) ++stats.producing;
    if (results != nullptr) {
      for (NodeId b : per_doc[d]) results->push_back({d, b});
    }
  }
  stats.refine_ms = timer.ElapsedMillis();
  RecordExecStats(stats);
  return stats;
}

Result<ExecStats> FixQueryProcessor::FullScan(const TwigQuery& query,
                                              std::vector<NodeRef>* results,
                                              const ExecStats* seed) {
  return FullScanExecute(corpus_, query, results, index_->num_entries(),
                         pool_, seed);
}

}  // namespace fix
