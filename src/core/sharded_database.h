// ShardedDatabase: scale-out within one process. Documents are partitioned
// across N independent Database shards by a hash of their global doc id;
// each shard owns its own corpus, buffer pool, B+-tree (and spatial
// sidecar), WAL, and feature cache, so index builds and InsertDocument
// commits proceed in parallel per shard with no cross-shard lock on the
// heavy path. Queries compile once against a master label table, scatter
// the compiled plan to every shard over a ThreadPool, and gather through
// the same deterministic doc-order merge the unsharded path uses — results
// are byte-identical to a single monolithic index over the same documents
// (verified across shard counts, probe engines, and sound_probe settings).
//
// Layout on disk (workdir):
//   shards.manifest        FXSH manifest: shard count, layout generation,
//                          total docs, shard directory names
//   labels.master          the master LabelTable (EncodeLabelTable format)
//   gen-<G>/shard-%04u/    one Database workdir per shard (Corpus::Save
//                          layout + the shard's *.fix index files)
//
// Label-id discipline: every shard's LabelTable is kept a full mirror of
// the master (same names, same dense ids — LabelTable ids are append-only,
// so interning master names in id order reproduces them exactly). A twig
// compiled against the master therefore resolves to label ids that are
// valid on every shard, which is what lets one PlanCache entry serve all
// scatter legs. Open() verifies each shard's persisted table is a prefix
// of the master and fails with Corruption when it is not.
//
// Thread-safety: Query / ExecuteMany / Compile / IsDegraded are concurrent
// (any number of threads). Everything that changes the document set or the
// shard layout — InsertXml, InsertMany, Rebalance, BuildIndexes,
// RebuildIndexes — is writer-exclusive: callers serialize mutators (fixd
// does so under Server::writer_mu_), while readers stay at full service.
// Rebalance follows the COW single-writer + live-readers protocol: the new
// layout is built at a fresh gen-<G+1> directory while the old shard
// vector keeps answering, then published by one atomic swap; in-flight
// queries finish against the old shards through their shared_ptrs.
//
// Quarantine is per shard: one shard whose index files are damaged
// degrades to a full scan over that shard's documents alone (its
// Database quarantines the index exactly as the unsharded path would),
// while every other shard keeps serving indexed — answers stay correct,
// only the damaged slice slows down.

#ifndef FIX_CORE_SHARDED_DATABASE_H_
#define FIX_CORE_SHARDED_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "core/fix_query.h"
#include "core/index_options.h"
#include "query/plan_cache.h"
#include "xml/label_table.h"

namespace fix {

/// Knobs for a sharded database. Deliberately not part of IndexOptions:
/// these shape the shard layout and the scatter machinery, not any single
/// index (docs/ARCHITECTURE.md, "Sharding" — the table there is the
/// normative inventory of these fields).
struct ShardedOptions {
  /// Number of shards to partition into (1..256). 1 is the degenerate
  /// layout: one shard holding every document, byte-identical to the
  /// unsharded path by construction.
  uint32_t shard_count = 1;
  /// Default per-shard index options (depth limit, probe engine,
  /// sound_probe, buffer pool size, ...). `path` is ignored — each shard
  /// derives its own.
  IndexOptions index;
  /// Per-tenant overrides: shard ordinal -> options used instead of
  /// `index` for that shard. Lets one tenant's shard run e.g. a different
  /// probe engine or sound_probe setting; final results are unaffected
  /// (refinement is exact), only per-shard cost profiles change.
  std::map<uint32_t, IndexOptions> shard_overrides;
  /// Forwarded to each shard's Database::Open (attach-time audit and the
  /// fault-injection seams).
  Database::OpenOptions open;
  /// Workers in the scatter pool (0 = hardware concurrency, clamped to
  /// [1, 64]). The pool also fans out parallel shard builds and inserts.
  int scatter_threads = 0;
};

/// The decoded shards.manifest — exposed so tools (fixdb_scrub, fixctl)
/// can walk a sharded layout without opening the database.
struct ShardLayout {
  uint32_t shard_count = 0;
  uint64_t generation = 0;  ///< bumped by every Rebalance
  uint64_t total_docs = 0;
  std::vector<std::string> shard_dirs;  ///< relative to the workdir
};

/// True when `workdir` holds a sharded layout (a shards.manifest file).
bool IsShardedLayout(const std::string& workdir);

/// Reads and validates workdir/shards.manifest.
[[nodiscard]] Result<ShardLayout> ReadShardLayout(const std::string& workdir);

class ShardedDatabase {
 public:
  ~ShardedDatabase();

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// The shard a global doc id routes to: splitmix64 hash of the id,
  /// reduced mod shard_count. Deterministic — Open() re-derives the whole
  /// doc placement from (total_docs, shard_count) alone.
  static uint32_t RouteDoc(uint32_t global_doc_id, uint32_t shard_count);

  /// Partitions `source`'s documents into options.shard_count shards under
  /// `workdir` (which must exist and be empty of any previous sharded
  /// layout), writes the manifest + master label table, and opens the
  /// result. Documents keep their source ids as global ids; per-shard
  /// local ids ascend in global-id order, which is what makes the gather
  /// merge a pure doc-order merge. No indexes are built — call
  /// BuildIndexes next.
  [[nodiscard]] static Result<std::unique_ptr<ShardedDatabase>> Partition(
      const Corpus& source, const std::string& workdir,
      ShardedOptions options);

  /// Opens an existing sharded layout: reads the manifest and master
  /// labels, opens every shard Database (each shard attaches and audits
  /// its own indexes; damaged ones quarantine per shard), and verifies
  /// doc counts and label-table prefix consistency. options.shard_count
  /// is ignored — the manifest is authoritative.
  [[nodiscard]] static Result<std::unique_ptr<ShardedDatabase>> Open(
      const std::string& workdir, ShardedOptions options = {});

  /// Builds index `name` on every shard in parallel (each build gets its
  /// own feature cache and buffer pool — no cross-shard lock). Per-shard
  /// option overrides apply. Aggregated build stats (summed) land in
  /// `stats` when non-null.
  [[nodiscard]] Status BuildIndexes(const std::string& name,
                                    BuildStats* stats = nullptr);

  /// Online per-shard RebuildIndex — the recovery path out of a shard
  /// quarantine. Healthy shards rebuild too (zero degraded window each).
  /// Writer-exclusive.
  [[nodiscard]] Status RebuildIndexes(const std::string& name);

  /// Compiles, scatters to every shard, gathers in global doc-id order.
  /// Per-leg stats are folded: counters sum, covered/used_index AND,
  /// degraded ORs (one quarantined shard marks the whole answer degraded
  /// while the other legs still answer from their indexes). lookup_ms /
  /// refine_ms sum across legs — aggregate work, not wall clock (the
  /// scatter's wall time is the `fix.shard.fanout_us` histogram).
  [[nodiscard]] Result<ExecStats> Query(const std::string& index_name,
                                        const std::string& xpath,
                                        std::vector<NodeRef>* results = nullptr);

  /// Batch form: queries compile (once, via the shared PlanCache) and run
  /// in order, each scattering across shards. Same per-query outcome
  /// contract as Database::ExecuteMany.
  [[nodiscard]] Result<std::vector<Database::BatchQueryOutcome>> ExecuteMany(
      const std::string& index_name, const std::vector<std::string>& xpaths);

  /// Parses + resolves against the master label table through the shared
  /// PlanCache — one compiled plan serves every shard's scatter leg.
  [[nodiscard]] Result<TwigQuery> Compile(const std::string& xpath);

  /// Parses one XML document, assigns the next global doc id, routes it to
  /// its shard, persists that shard's corpus + the master label table, and
  /// commits it into the shard's index via the COW write path (an empty
  /// index name inserts into the corpus only). Only the
  /// target shard's readers pause (briefly, for the corpus append); every
  /// other shard is untouched. Writer-exclusive (callers serialize
  /// mutators). Returns the global doc id.
  [[nodiscard]] Result<uint32_t> InsertXml(const std::string& index_name,
                                           std::string_view xml);

  /// Batched insert: documents are parsed and routed up front, then every
  /// target shard persists and index-commits its slice in parallel — the
  /// scatter pool fans the commits out and no lock spans two shards.
  /// Returns the global doc ids, in input order.
  [[nodiscard]] Result<std::vector<uint32_t>> InsertMany(
      const std::string& index_name, const std::vector<std::string>& xmls);

  /// Online shard split/rebalance to `new_shard_count`: re-partitions
  /// every document into a fresh gen-<G+1> layout, builds index `name` on
  /// each new shard in parallel, atomically publishes (manifest rewrite +
  /// shard-vector swap), and retires the old generation's directories.
  /// Readers are live throughout — in-flight queries finish against the
  /// old shards. Writer-exclusive.
  [[nodiscard]] Status Rebalance(uint32_t new_shard_count,
                                 const std::string& index_name);

  uint32_t shard_count() const FIX_EXCLUDES(shards_mu_);
  uint64_t num_docs() const FIX_EXCLUDES(master_mu_);
  uint64_t layout_generation() const FIX_EXCLUDES(shards_mu_);
  const std::string& workdir() const { return workdir_; }

  /// True when any shard answers `index_name` by full scan (quarantine).
  bool IsDegraded(const std::string& index_name) const
      FIX_EXCLUDES(shards_mu_);
  /// Per-shard degradation flags, by shard ordinal.
  std::vector<bool> DegradedShards(const std::string& index_name) const
      FIX_EXCLUDES(shards_mu_);

  /// Shard `s`'s Database — tests, benches, and stats tooling reach
  /// per-shard state (health, index handles) through this. The pointer is
  /// valid until the next Rebalance retires the shard.
  Database* shard_db(uint32_t s) FIX_EXCLUDES(shards_mu_);

  /// Shared plan-cache statistics (one cache across all shards).
  PlanCache::Stats plan_cache_stats() const { return plan_cache_.GetStats(); }

 private:
  /// One shard: a Database plus the local->global doc-id map. `gate`
  /// orders corpus mutation against in-flight queries on this shard only
  /// — scatter legs hold it shared for the leg, the insert path holds it
  /// exclusive around the corpus append. Index commits happen outside the
  /// gate (the COW protocol serves readers throughout).
  struct Shard {
    // LOCK-ORDER: 5 ShardedDatabase::Shard::gate
    mutable SharedMutex gate;
    std::unique_ptr<Database> db;
    /// Local doc id -> global doc id, ascending (locals are assigned in
    /// global-id order). Guarded by `gate` alongside the corpus.
    std::vector<uint32_t> to_global FIX_GUARDED_BY(gate);
    uint32_t ordinal = 0;
    std::string dir;  ///< absolute shard directory
  };
  using ShardVector = std::vector<std::shared_ptr<Shard>>;

  explicit ShardedDatabase(std::string workdir);

  /// Copies the live shard vector under the shared lock — queries execute
  /// against the snapshot so a concurrent Rebalance can never pull a
  /// shard out from under them.
  ShardVector SnapshotShards() const FIX_EXCLUDES(shards_mu_);

  /// Interns every master label the shard does not have yet, in master id
  /// order, keeping the shard table a full mirror. Caller holds master_mu_
  /// and the shard's gate exclusively.
  static void SyncShardLabels(const LabelTable& master, Corpus* corpus);

  /// The scatter-gather core behind Query and ExecuteMany.
  [[nodiscard]] Result<ExecStats> ScatterGather(
      const std::string& index_name, const TwigQuery& q,
      std::vector<NodeRef>* results);

  /// Serializes the manifest for the given layout and writes it with a
  /// temp-file + rename (readers of the file never see a torn manifest).
  [[nodiscard]] Status WriteManifest(const ShardLayout& layout) const;

  /// Persists the master label table (encode under master_mu_, write
  /// outside). Mutators call it after growing the table.
  [[nodiscard]] Status PersistMasterLabels() FIX_EXCLUDES(master_mu_);

  /// The effective IndexOptions for shard ordinal `s` (override or
  /// default).
  IndexOptions OptionsForShard(uint32_t s) const;

  std::string workdir_;
  ShardedOptions options_;

  /// Guards the shard vector and layout generation. Held briefly: readers
  /// snapshot the vector, Rebalance swaps it.
  // LOCK-ORDER: 3 ShardedDatabase::shards_mu_
  mutable SharedMutex shards_mu_;
  ShardVector shards_ FIX_GUARDED_BY(shards_mu_);
  uint64_t generation_ FIX_GUARDED_BY(shards_mu_) = 0;

  /// Guards the master label table, the global doc counter, and document
  /// routing — the only cross-shard serialization point on the write
  /// path, held for parse/route bookkeeping but never across a shard's
  /// persist or index commit.
  // LOCK-ORDER: 4 ShardedDatabase::master_mu_
  mutable Mutex master_mu_;
  LabelTable master_labels_ FIX_GUARDED_BY(master_mu_);
  uint64_t total_docs_ FIX_GUARDED_BY(master_mu_) = 0;

  /// One plan cache for all shards: an XPath compiled once (against the
  /// master table) is reused by every scatter leg.
  mutable PlanCache plan_cache_;

  /// Fans out scatter legs, parallel builds, and batched insert commits.
  /// Null when the layout has one shard (legs run inline).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fix

#endif  // FIX_CORE_SHARDED_DATABASE_H_
