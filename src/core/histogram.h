// FeatureHistogram: equi-depth histograms over λ_max, per root label —
// Section 5's "good practice is to build a histogram on the primary sorting
// key (e.g., λ_max) in the B-tree" for estimating the number of candidate
// results before running a query.
//
// The query optimizer uses the estimate to decide whether the index is
// worth probing at all: an unselective probe whose candidate set
// approaches the entry count is better served by the navigational full
// scan (no pointer chasing, purely sequential).

#ifndef FIX_CORE_HISTOGRAM_H_
#define FIX_CORE_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "storage/btree.h"
#include "xml/label_table.h"

namespace fix {

class FeatureHistogram {
 public:
  /// Builds per-label histograms with one ordered scan of the index
  /// B+-tree (entries arrive in (label, λ_max) order, so quantile
  /// boundaries fall out of the scan directly).
  [[nodiscard]] static Result<FeatureHistogram> FromBTree(BTree* btree,
                                            size_t buckets = 32);

  /// Estimated number of entries with the given root label whose λ_max is
  /// >= `lambda` (the λ_max half of the containment probe — the λ_min half
  /// filters almost nothing because ranges are symmetric).
  uint64_t EstimateGreaterEqual(LabelId label, double lambda) const;

  /// Estimate across every label (for probes where root-label pruning is
  /// not sound and the scan covers the whole tree).
  uint64_t EstimateGreaterEqualAllLabels(double lambda) const;

  /// Entries carrying `label`.
  uint64_t LabelCount(LabelId label) const;

  /// All entries.
  uint64_t total() const { return total_; }

  /// Number of labels with at least one entry.
  size_t num_labels() const { return per_label_.size(); }

 private:
  struct LabelHistogram {
    uint64_t count = 0;
    /// Ascending λ_max values at equi-depth quantile boundaries
    /// (boundaries[i] ≈ the (i+1)/B quantile).
    std::vector<double> boundaries;
  };

  std::map<LabelId, LabelHistogram> per_label_;
  uint64_t total_ = 0;
};

}  // namespace fix

#endif  // FIX_CORE_HISTOGRAM_H_
