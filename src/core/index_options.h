// Tuning knobs for FIX index construction and querying.

#ifndef FIX_CORE_INDEX_OPTIONS_H_
#define FIX_CORE_INDEX_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace fix {

class PageIo;

/// Which access method answers the containment probe (FixIndex::Probe).
///
///   kBTree   — the composite-key B+-tree range scan (the paper's layout).
///   kSpatial — the per-label kd-tree over (λ_max, λ₂); prunes whole
///              subtrees instead of filtering row by row, so λ₂-selective
///              probes touch far fewer entries (Section 8's direction).
///   kAuto    — kSpatial whenever the spatial structure is resident
///              (built, refreshed after a commit, or loaded from its
///              sidecar), kBTree otherwise.
///
/// Both engines return byte-identical candidate sets (same entries, same
/// order); the choice is purely a cost decision, and a missing or
/// quarantined spatial structure always degrades to the B+-tree — never to
/// a wrong answer.
enum class ProbeEngine : uint32_t {
  kBTree = 0,
  kSpatial = 1,
  kAuto = 2,
};

struct IndexOptions {
  /// Subpattern depth limit L of Algorithm 1. 0 indexes each document as a
  /// single unit (the collection-of-small-documents mode); a positive L
  /// enumerates one depth-L subpattern per element of documents deeper
  /// than L (Theorem 4) and covers twig queries of depth <= L.
  int depth_limit = 0;

  /// Clustered (subtree copies in key order) vs unclustered (pointers into
  /// primary storage). Section 4.1.
  bool clustered = false;

  /// Value-hash domain size β (Section 4.6). 0 disables value indexing.
  uint32_t value_beta = 0;

  /// Include λ₂ (second-largest eigenvalue magnitude) in the pruning test —
  /// the "more features" extension of Section 8. The key layout always
  /// reserves the slot; this flag controls whether queries filter on it.
  bool use_lambda2 = false;

  /// Guards for eigenvalue extraction: a subpattern whose bisimulation
  /// graph exceeds this many vertices (or whose tree expansion exceeds
  /// max_expanded_nodes) is indexed with the artificial [-inf, +inf] range
  /// instead (Section 6.1) — always a candidate, never a false negative.
  size_t max_pattern_vertices = 400;
  uint64_t max_expanded_nodes = 200000;

  /// Round-off slack ε for the containment test (Section 3.3 discusses why
  /// eigenvalue keys must tolerate numerical error).
  double epsilon = 1e-6;

  /// REPRODUCTION FINDING. The paper's probe (λ_max of the query pattern)
  /// is NOT sound in general: Theorem 3 covers *induced* subgraphs, but a
  /// twig match only guarantees a homomorphic image — possibly quotiented
  /// (repeated query labels merging) and non-induced (extra data edges) —
  /// and σ_max of a skew-symmetric matrix is not monotone under edge
  /// addition. On recursive data (XMark parlist chains, Treebank) this
  /// produces real false negatives; see tests/soundness_test.cc for a
  /// concrete counterexample.
  ///
  /// sound_probe = false reproduces the paper exactly. sound_probe = true
  /// probes with the largest single edge weight of the query pattern
  /// instead: every 2-vertex induced subgraph IS covered by Theorem 3 and
  /// edges survive quotients, so this bound is provably free of false
  /// negatives, at the cost of pruning power.
  bool sound_probe = false;

  /// Probe engine selection (see ProbeEngine above). Persisted, so a
  /// reopened index keeps answering with the engine it was built for.
  ProbeEngine probe_engine = ProbeEngine::kAuto;

  /// Buffer-pool frames for the index B+-tree.
  size_t buffer_pool_pages = 4096;

  /// Worker threads for Build's construction pipeline. 1 (the default)
  /// runs the pipeline inline on the calling thread with no pool and no
  /// locking; 0 means "use the hardware concurrency"; values are clamped
  /// to [1, 64]. The built index is byte-identical regardless of this
  /// setting (parallel stages only compute; all ordering-sensitive work —
  /// edge-weight interning, sequence numbering, storage writes — stays
  /// sequential). Construction-time only; not persisted in the meta
  /// sidecar.
  uint32_t build_threads = 1;

  /// Byte budget (in MiB) of the spectral feature cache that memoizes
  /// EigPair results across structurally identical patterns during Build.
  /// 0 disables the cache. Cache behavior never changes the built index,
  /// only how often the eigensolver runs. Construction-time only; not
  /// persisted in the meta sidecar.
  uint32_t feature_cache_mb = 64;

  /// Index file path. The clustered store (if any) lives at path + ".data".
  std::string path;

  /// Backend factory for the index page file. Unset => a plain file
  /// (FilePageIo). Tests set this to wrap the file in a
  /// FaultInjectionPageIo, placing injected faults underneath the page
  /// checksums. Not persisted in the index meta sidecar.
  std::function<std::unique_ptr<PageIo>()> page_io_factory;

  /// Backend factory for the write-ahead log (path + ".wal"), separate from
  /// page_io_factory so tests can inject faults into the log and the data
  /// file independently (a shared factory would also hand one test fault
  /// budget to two files). Unset => a plain file. Not persisted in the
  /// index meta sidecar.
  std::function<std::unique_ptr<PageIo>()> wal_io_factory;
};

/// Construction-time statistics (Table 1 columns and diagnostics).
struct BuildStats {
  double construction_seconds = 0;
  uint64_t entries = 0;            ///< B+-tree entries inserted
  uint64_t oversized_patterns = 0; ///< patterns given the artificial range
  uint64_t distinct_patterns = 0;  ///< distinct (vertex) patterns seen
  uint64_t btree_bytes = 0;
  uint64_t clustered_bytes = 0;    ///< clustered copy store size (0 if none)
  uint64_t bisim_vertices = 0;     ///< total bisimulation vertices built
  uint64_t bisim_edges = 0;
  int max_document_depth = 0;
  /// Spectral feature cache counters for this build (see
  /// IndexOptions::feature_cache_mb). hits + misses = eigensolver-eligible
  /// pattern lookups; each hit skipped one O(n³) solve.
  uint64_t feature_cache_hits = 0;
  uint64_t feature_cache_misses = 0;
  uint64_t feature_cache_evictions = 0;
  /// Worker threads the pipeline actually ran with (after resolving
  /// build_threads = 0 and clamping).
  uint32_t build_threads_used = 0;
};

}  // namespace fix

#endif  // FIX_CORE_INDEX_OPTIONS_H_
