#include "core/fix_index.h"

#include <algorithm>
#include <limits>
#include <cstring>
#include <set>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "graph/bisim_builder.h"
#include "graph/bisim_traveler.h"
#include "query/compile.h"
#include "spectral/feature_cache.h"
#include "spectral/skew_matrix.h"
#include "spectral/spectrum.h"
#include "xml/serializer.h"

namespace fix {

namespace {

/// See IndexOptions::build_threads: 0 means hardware concurrency, then
/// clamp to [1, 64].
uint32_t ResolveBuildThreads(uint32_t requested) {
  uint32_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return std::clamp<uint32_t>(n, 1, 64);
}

EigPair OversizedPair() {
  EigPair p;
  p.lambda_max = std::numeric_limits<double>::infinity();
  p.lambda_min = -std::numeric_limits<double>::infinity();
  p.lambda2 = std::numeric_limits<double>::infinity();
  return p;
}

FeatureKey MakeKey(LabelId label, const EigPair& eigs) {
  FeatureKey key;
  key.root_label = label;
  key.lambda_max = eigs.lambda_max;
  key.lambda_min = eigs.lambda_min;
  key.lambda2 = eigs.lambda2;
  return key;
}

Counter* SpatialRebuilds() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.index.spatial.rebuilds", "ops",
      "spatial probe structure builds/refreshes published to readers");
  return c;
}

Counter* SpatialSidecarFailures() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.index.spatial.sidecar_failures", "ops",
      "spatial sidecar load/write/refresh failures (probe engine degraded "
      "to the B+-tree)");
  return c;
}

// Registry fold of one finished bulk build (docs/OBSERVABILITY.md).
void RecordBuildStats(const BuildStats& stats) {
  MetricsRegistry& r = MetricsRegistry::Instance();
  static Counter* builds = r.FindOrCreateCounter(
      "fix.build.count", "ops", "bulk index builds completed");
  static Counter* entries = r.FindOrCreateCounter(
      "fix.build.entries.total", "entries", "index entries emitted by builds");
  static Counter* oversized = r.FindOrCreateCounter(
      "fix.build.oversized.total", "patterns",
      "patterns degraded to the always-candidate range");
  static Counter* distinct = r.FindOrCreateCounter(
      "fix.build.distinct_patterns.total", "patterns",
      "distinct depth-limited patterns solved");
  static Counter* vertices = r.FindOrCreateCounter(
      "fix.build.bisim_vertices.total", "vertices",
      "bisimulation-graph vertices built");
  static Counter* edges = r.FindOrCreateCounter(
      "fix.build.bisim_edges.total", "edges",
      "bisimulation-graph edges built");
  static Gauge* threads = r.FindOrCreateGauge(
      "fix.build.threads", "threads", "thread count of the last build");
  static Histogram* duration = r.FindOrCreateHistogram(
      "fix.build.construction_us", "us", "bulk build wall time");
  builds->Increment();
  entries->Add(stats.entries);
  oversized->Add(stats.oversized_patterns);
  distinct->Add(stats.distinct_patterns);
  vertices->Add(stats.bisim_vertices);
  edges->Add(stats.bisim_edges);
  threads->Set(stats.build_threads_used);
  duration->Record(
      static_cast<uint64_t>(stats.construction_seconds * 1e6));
}

}  // namespace

Result<EigPair> FixIndex::GraphFeatures(const BisimGraph& graph,
                                        BuildStats* stats) {
  if (graph.num_vertices() > options_.max_pattern_vertices) {
    if (stats != nullptr) ++stats->oversized_patterns;
    return OversizedPair();
  }
  DenseMatrix m(0);
  {
    // Readers may be interning query-pattern pairs concurrently with the
    // single writer (this path feeds InsertDocument, which no longer
    // excludes reads); both sides serialize on the encoder mutex.
    MutexLock lock(*encoder_mu_);
    m = BuildSkewMatrix(graph, &encoder_);
  }
  auto sigmas = SkewSpectrum(m);
  if (!sigmas.ok()) {
    // Eigensolver failure (pathological spectrum): degrade to the
    // artificial always-a-candidate range rather than failing the build —
    // exactly the Section 6.1 treatment of oversized patterns, and equally
    // sound.
    if (stats != nullptr) ++stats->oversized_patterns;
    return OversizedPair();
  }
  return EigPairFromSpectrum(*sigmas);
}

Result<EigPair> FixIndex::PatternFeatures(BisimGraph* graph,
                                          BisimVertexId vertex,
                                          int depth_limit, BuildStats* stats) {
  BisimVertex& v = graph->vertex(vertex);
  if (v.eigs.has_value()) return *v.eigs;
  if (stats != nullptr) ++stats->distinct_patterns;

  uint64_t expanded = ExpandedPatternSize(*graph, vertex, depth_limit,
                                          options_.max_expanded_nodes);
  EigPair eigs;
  if (expanded >= options_.max_expanded_nodes) {
    if (stats != nullptr) ++stats->oversized_patterns;
    eigs = OversizedPair();
  } else {
    BisimGraph pattern;
    FIX_ASSIGN_OR_RETURN(pattern,
                         BuildDepthLimitedPattern(*graph, vertex, depth_limit));
    FIX_ASSIGN_OR_RETURN(eigs, GraphFeatures(pattern, stats));
  }
  graph->vertex(vertex).eigs = eigs;
  return eigs;
}

Result<FixIndex> FixIndex::Build(Corpus* corpus, const IndexOptions& options,
                                 BuildStats* stats) {
  if (options.path.empty()) {
    return Status::InvalidArgument("IndexOptions.path must be set");
  }
  TraceSpan span("index.build");
  Timer timer;
  // Collect stats even when the caller passed none, so the registry fold
  // below always sees the real numbers.
  BuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  FixIndex index(corpus, options);
  index.file_ = options.page_io_factory != nullptr
                    ? std::make_unique<PageFile>(options.page_io_factory())
                    : std::make_unique<PageFile>();
  FIX_RETURN_IF_ERROR(index.file_->Open(options.path, /*create=*/true));
  index.pool_ = std::make_unique<BufferPool>(index.file_.get(),
                                             options.buffer_pool_pages);
  {
    auto tree = BTree::Create(index.pool_.get(), kFeatureKeySize,
                              kIndexValueSize);
    if (!tree.ok()) return tree.status();
    index.btree_ = std::make_unique<BTree>(std::move(tree).value());
  }
  if (options.clustered) {
    FIX_RETURN_IF_ERROR(
        index.clustered_.Open(options.path + ".data", /*create=*/true));
  }
  if (options.value_beta > 0) {
    index.value_hasher_ =
        std::make_unique<ValueHasher>(corpus->labels(), options.value_beta);
  }

  {
    // A fresh (empty) log rides along from the start so the first
    // incremental update has somewhere to commit.
    auto wal = Wal::Create(options.path + ".wal", kFeatureKeySize,
                           kIndexValueSize, options.wal_io_factory);
    if (!wal.ok()) return wal.status();
    index.wal_ = std::move(wal).value();
  }

  // CONSTRUCT-INDEX over the collection: the batched fan-out / intern /
  // solve / emit pipeline, then a sorted bulk load (see DESIGN.md,
  // "Construction pipeline").
  FIX_RETURN_IF_ERROR(index.BuildPipeline(stats));
  FIX_RETURN_IF_ERROR(index.btree_->Flush());
  // The page file is deliberately not fsynced here: a bulk build is a
  // rebuildable artifact, and a power loss racing one at worst tears pages
  // that the checksums catch on reopen — the index quarantines and service
  // degrades to full scan, never to a wrong answer. Incremental updates
  // (small, and feeding the staleness check) do sync before their meta
  // write.
  index.indexed_docs_ = corpus->num_docs();
  FIX_RETURN_IF_ERROR(index.WriteMeta());
  // Best effort like the page-file flush above: a missing sidecar merely
  // costs the next Open an engine fallback (or a refresh at first commit).
  index.PersistSpatial();

  stats->construction_seconds = timer.ElapsedSeconds();
  stats->entries = index.btree_->num_entries();
  stats->btree_bytes = index.BTreeBytes();
  stats->clustered_bytes = index.ClusteredBytes();
  RecordBuildStats(*stats);
  span.AddAttr("entries", stats->entries);
  span.AddAttr("threads", static_cast<uint64_t>(stats->build_threads_used));
  return index;
}

void FixIndex::PrepareDocument(uint32_t doc_id, DocWork* out) const {
  const Document& doc = corpus_->doc(doc_id);
  NodeId root_elem = doc.root_element();
  if (root_elem == kInvalidNode) {
    out->empty = true;
    return;
  }
  out->depth = doc.Depth(root_elem);
  const int limit = options_.depth_limit;

  DocumentEventStream stream(&doc, doc_id, value_hasher_.get());
  BisimBuilder builder;
  std::unordered_set<BisimVertexId> seen;
  BisimBuilder::CloseCallback on_close =
      [&](BisimGraph* graph, BisimVertexId vertex, NodeRef ref,
          bool is_root) -> Status {
    if (limit == 0 && !is_root) return Status::OK();
    out->closes.push_back(CloseEvent{vertex, ref});
    if (!seen.insert(vertex).second) return Status::OK();  // memoized later

    PatternWork work;
    work.vertex = vertex;
    if (limit == 0) {
      // Whole-document pattern; the root closes last, so the graph is
      // complete here. The signature reads the graph in place.
      if (graph->num_vertices() > options_.max_pattern_vertices) {
        work.oversized = true;
      } else {
        work.signature = CanonicalPatternSignature(*graph);
      }
    } else {
      uint64_t expanded = ExpandedPatternSize(*graph, vertex, limit,
                                              options_.max_expanded_nodes);
      if (expanded >= options_.max_expanded_nodes) {
        work.oversized = true;
      } else {
        BisimGraph pattern;
        FIX_ASSIGN_OR_RETURN(pattern,
                             BuildDepthLimitedPattern(*graph, vertex, limit));
        if (pattern.num_vertices() > options_.max_pattern_vertices) {
          work.oversized = true;
        } else {
          work.signature = CanonicalPatternSignature(pattern);
          work.pattern = std::move(pattern);
        }
      }
    }
    out->patterns.push_back(std::move(work));
    return Status::OK();
  };
  auto built = builder.Build(&stream, on_close);
  if (!built.ok()) {
    out->status = built.status();
    return;
  }
  out->graph = std::move(built).value();
  out->vertices = out->graph.num_vertices();
  out->edges = out->graph.num_edges();
}

void FixIndex::SolvePattern(const BisimGraph& doc_graph, PatternWork* work,
                            FeatureCache* cache) const {
  if (work->oversized) {
    work->eigs = OversizedPair();
    return;
  }
  const BisimGraph& pattern =
      work->pattern.has_value() ? *work->pattern : doc_graph;
  if (cache != nullptr) {
    CachedFeature hit;
    if (cache->Lookup(work->signature, &hit)) {
      work->eigs = hit.eigs;
      work->solver_failed = hit.solver_failed;
      return;
    }
  }
  DenseMatrix m = BuildSkewMatrixFrozen(pattern, encoder_);
  auto sigmas = SkewSpectrum(m);
  CachedFeature computed;
  if (sigmas.ok()) {
    computed.eigs = EigPairFromSpectrum(*sigmas);
  } else {
    // Eigensolver failure: same Section 6.1 degradation as the legacy
    // path. The failure bit rides along in the cache so replayed hits
    // count toward oversized_patterns exactly like the first computation.
    computed.eigs = OversizedPair();
    computed.solver_failed = true;
  }
  work->eigs = computed.eigs;
  work->solver_failed = computed.solver_failed;
  if (cache != nullptr) cache->Insert(work->signature, computed);
}

Status FixIndex::BuildPipeline(BuildStats* stats) {
  const uint32_t threads = ResolveBuildThreads(options_.build_threads);
  if (stats != nullptr) stats->build_threads_used = threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  FeatureCache cache(static_cast<size_t>(options_.feature_cache_mb) * 1024 *
                     1024);
  FeatureCache* cache_ptr =
      options_.feature_cache_mb > 0 ? &cache : nullptr;

  // (encoded key, source node) runs accumulated across every window, sorted
  // once at the end. Sorting before loading is what makes the result
  // independent of build_threads.
  std::vector<std::pair<std::string, NodeRef>> entries;

  const uint32_t num_docs = corpus_->num_docs();
  const size_t window = std::max<size_t>(1, static_cast<size_t>(threads) * 8);
  for (uint32_t begin = 0; begin < num_docs;
       begin += static_cast<uint32_t>(window)) {
    const uint32_t end = static_cast<uint32_t>(
        std::min<uint64_t>(num_docs, static_cast<uint64_t>(begin) + window));
    std::vector<DocWork> works(end - begin);

    // Phase A (parallel): parse, bisimulate, prepare distinct patterns.
    // Workers touch only read-only index state and their own DocWork.
    ParallelFor(pool.get(), works.size(), [&](size_t i) {
      PrepareDocument(begin + static_cast<uint32_t>(i), &works[i]);
    });
    for (const DocWork& w : works) FIX_RETURN_IF_ERROR(w.status);

    // Phase B (sequential): intern edge weights in document/pattern order.
    // The encoder must end up with exactly the single-threaded content —
    // weight ids feed the matrices and the persisted meta — so interning
    // covers every non-oversized distinct pattern, cache hit or not.
    for (DocWork& w : works) {
      for (PatternWork& p : w.patterns) {
        if (p.oversized) continue;
        InternPatternWeights(
            p.pattern.has_value() ? *p.pattern : w.graph, &encoder_);
      }
    }

    // Phase C (parallel): feature-cache lookup or frozen eigensolve.
    std::vector<std::pair<const BisimGraph*, PatternWork*>> flat;
    for (DocWork& w : works) {
      for (PatternWork& p : w.patterns) flat.emplace_back(&w.graph, &p);
    }
    ParallelFor(pool.get(), flat.size(), [&](size_t i) {
      SolvePattern(*flat[i].first, flat[i].second, cache_ptr);
    });

    // Phase D (sequential): stats, per-vertex feature memo, and entry
    // emission in close order (sequence numbers must match the legacy
    // single-threaded assignment).
    for (DocWork& w : works) {
      if (w.empty) continue;
      if (stats != nullptr) {
        stats->max_document_depth =
            std::max(stats->max_document_depth, w.depth);
        stats->bisim_vertices += w.vertices;
        stats->bisim_edges += w.edges;
        stats->distinct_patterns += w.patterns.size();
        for (const PatternWork& p : w.patterns) {
          if (p.oversized || p.solver_failed) ++stats->oversized_patterns;
        }
      }
      for (const PatternWork& p : w.patterns) {
        w.graph.vertex(p.vertex).eigs = p.eigs;
      }
      for (const CloseEvent& c : w.closes) {
        const BisimVertex& v = w.graph.vertex(c.vertex);
        FeatureKey key = MakeKey(v.label, *v.eigs);
        key.seq = next_seq_++;
        entries.emplace_back(EncodeFeatureKey(key), c.ref);
      }
    }
  }

  // Merge: one global sort by encoded key (unique thanks to the seq
  // suffix), then clustered copies in key order, then the packed load.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, std::string>> kv;
  kv.reserve(entries.size());
  if (options_.clustered) {
    for (auto& [key, ref] : entries) {
      std::string buf;
      EncodeDocument(corpus_->doc(ref.doc_id), &buf, ref.node_id);
      RecordId rid;
      FIX_ASSIGN_OR_RETURN(rid, clustered_.Append(buf));
      kv.emplace_back(std::move(key), EncodeIndexValue({ref, rid.offset}));
    }
    FIX_RETURN_IF_ERROR(clustered_.Sync());
  } else {
    for (auto& [key, ref] : entries) {
      kv.emplace_back(std::move(key), EncodeIndexValue({ref, 0}));
    }
  }
  FIX_RETURN_IF_ERROR(btree_->BulkLoad(kv));
  // The spatial probe engine attaches from the same sorted stream the tree
  // just loaded — no second B+-tree scan. Build persists it after the meta.
  AttachSpatial(std::make_shared<const SpatialProbe>(
      SpatialProbe::FromSortedEntries(kv, btree_->generation())));
  SpatialRebuilds()->Increment();

  if (stats != nullptr && cache_ptr != nullptr) {
    FeatureCacheStats cs = cache.Stats();
    stats->feature_cache_hits = cs.hits;
    stats->feature_cache_misses = cs.misses;
    stats->feature_cache_evictions = cs.evictions;
  }
  return Status::OK();
}

Status FixIndex::CollectEntries(
    uint32_t doc_id, BuildStats* stats,
    std::vector<std::pair<std::string, std::string>>* kv) {
  const Document& doc = corpus_->doc(doc_id);
  NodeId root_elem = doc.root_element();
  if (root_elem == kInvalidNode) return Status::OK();
  if (stats != nullptr) {
    stats->max_document_depth =
        std::max(stats->max_document_depth, doc.Depth(root_elem));
  }
  // DEVIATION FROM ALGORITHM 1 (documented in DESIGN.md, finding F2): the
  // paper indexes documents shallower than L as single whole-document
  // units even inside a depth-limited index, which makes //-rooted queries
  // unsound — whole-document entries carry the document root's label, so
  // shallow documents become invisible to a probe keyed on the pattern
  // root's label. A depth-limited index therefore enumerates one
  // subpattern per element for EVERY document (patterns of documents
  // shallower than L are simply never truncated), which is what
  // Theorem 5's completeness argument actually needs.
  int limit = options_.depth_limit;

  DocumentEventStream stream(&doc, doc_id, value_hasher_.get());
  BisimBuilder builder;
  auto emit = [&](const FeatureKey& key, NodeRef ref) {
    FeatureKey numbered = key;
    numbered.seq = next_seq_++;
    kv->emplace_back(EncodeFeatureKey(numbered), EncodeIndexValue({ref, 0}));
  };
  BisimBuilder::CloseCallback on_close =
      [&](BisimGraph* graph, BisimVertexId vertex, NodeRef ref,
          bool is_root) -> Status {
    if (limit == 0) {
      if (!is_root) return Status::OK();
      EigPair eigs;
      FIX_ASSIGN_OR_RETURN(eigs, GraphFeatures(*graph, stats));
      if (stats != nullptr) ++stats->distinct_patterns;
      emit(MakeKey(graph->vertex(vertex).label, eigs), ref);
      return Status::OK();
    }
    EigPair eigs;
    FIX_ASSIGN_OR_RETURN(eigs, PatternFeatures(graph, vertex, limit, stats));
    emit(MakeKey(graph->vertex(vertex).label, eigs), ref);
    return Status::OK();
  };
  BisimGraph graph;
  FIX_ASSIGN_OR_RETURN(graph, builder.Build(&stream, on_close));
  if (stats != nullptr) {
    stats->bisim_vertices += graph.num_vertices();
    stats->bisim_edges += graph.num_edges();
  }
  return Status::OK();
}

Status FixIndex::CommitBatch(
    const std::vector<std::pair<std::string, std::string>>& inserts,
    const std::vector<std::pair<std::string, std::string>>& deletes,
    uint32_t new_indexed_docs) {
  if (wal_.failed()) {
    // Fail-stop: a previous commit's append or fsync failed, and its record
    // may or may not be durable. Until a reopen replays the log, no new
    // batch may run — PrepareCommit would flush fresh pages over pages an
    // ambiguously-durable commit record still references.
    return Status::IOError(
        "write-ahead log is dead after a failed commit flush; reopen the "
        "index to recover");
  }
  FIX_RETURN_IF_ERROR(btree_->BeginBatch());
  // Everything up to the WAL fsync can fail without consequence: the batch
  // is invisible to readers and AbortBatch reclaims its pages.
  Status staged = [&]() -> Status {
    for (const auto& [key, value] : inserts) {
      FIX_RETURN_IF_ERROR(btree_->Insert(key, value));
    }
    for (const auto& [key, value] : deletes) {
      FIX_RETURN_IF_ERROR(btree_->Delete(key, value));
    }
    WalCommit commit;
    FIX_ASSIGN_OR_RETURN(commit, btree_->PrepareCommit());
    commit.indexed_docs = new_indexed_docs;
    commit.next_seq = next_seq_;
    // The point of no return. Once this fsync succeeds the generation is
    // durable; until then it does not exist. A failure here (including a
    // failed fsync — never ack an unsynced commit) fail-stops the log and
    // surfaces as IOError, which Database turns into a quarantine.
    return wal_.AppendCommit(commit);
  }();
  if (!staged.ok()) {
    // If the failure happened inside the WAL append itself, the record's
    // durability is ambiguous — it may be fully on disk with only the
    // fsync's acknowledgment lost. The fresh pages it references must then
    // survive untouched for a possible replay, so the abort neither blanks
    // nor recycles them. Any earlier failure provably never reached the
    // log, and the pages are reclaimed normally.
    btree_->AbortBatch(/*blank_pages=*/!wal_.failed());
    return staged;
  }
  btree_->FinalizeCommit();
  indexed_docs_ = new_indexed_docs;
  // Checkpoint the committed generation into the data file's meta page and
  // the sidecar, then retire the log. Failures past this point cannot undo
  // the commit — the WAL carries it and reopening replays it — but they do
  // mean durability is now resting on the log alone, so they still
  // propagate (fail-stop) rather than being papered over.
  FIX_RETURN_IF_ERROR(btree_->Checkpoint());
  FIX_RETURN_IF_ERROR(WriteMeta());
  // Publish a spatial snapshot of the new generation (readers pinned to
  // the previous one keep it alive via their shared_ptr copies). Refresh
  // failures degrade the probe engine, never the committed batch.
  RefreshSpatial();
  return wal_.Reset();
}

Status FixIndex::InsertDocument(uint32_t doc_id, BuildStats* stats) {
  if (options_.clustered) {
    return Status::NotSupported(
        "incremental insertion requires the unclustered layout; clustered "
        "copies are materialized in key order at build time");
  }
  if (doc_id >= corpus_->num_docs()) {
    return Status::InvalidArgument("doc_id not in corpus");
  }
  histogram_.reset();  // estimates must see the new entries
  const uint32_t saved_seq = next_seq_;
  const uint64_t saved_gen = btree_->generation();
  std::vector<std::pair<std::string, std::string>> kv;
  Status status = CollectEntries(doc_id, stats, &kv);
  if (status.ok()) {
    // Coverage extends atomically with the entries: the WAL commit carries
    // the new count, so recovery can never adopt the entries without it
    // (or vice versa).
    uint32_t new_docs = indexed_docs_;
    if (new_docs != kIndexedDocsUnknown) {
      new_docs = std::max(new_docs, doc_id + 1);
    }
    status = CommitBatch(kv, {}, new_docs);
  }
  if (!status.ok()) {
    // Roll the sequence allocator back only if the batch really aborted. A
    // failure after the WAL commit (e.g. the post-commit checkpoint) leaves
    // the generation published with these numbers spent — reusing them
    // would mint duplicates against the durable commit record.
    if (btree_->generation() == saved_gen) next_seq_ = saved_seq;
    return status;
  }
  return Status::OK();
}

Status FixIndex::RemoveDocument(uint32_t doc_id) {
  // Collect the victim entries with one ordered scan, then delete them in
  // one COW batch. Lazy B+-tree deletion never merges pages, which matches
  // the paper's read-heavy usage profile.
  std::vector<std::pair<std::string, std::string>> victims;
  {
    BTree::Iterator it;
    FIX_ASSIGN_OR_RETURN(it, btree_->SeekFirst());
    while (it.Valid()) {
      IndexValue value = DecodeIndexValue(it.value());
      if (value.ref.doc_id == doc_id) {
        victims.emplace_back(std::string(it.key()), std::string(it.value()));
      }
      FIX_RETURN_IF_ERROR(it.Next());
    }
  }
  histogram_.reset();
  if (victims.empty()) return Status::OK();
  return CommitBatch({}, victims, indexed_docs_);
}

Result<uint64_t> FixIndex::EstimateCandidates(const TwigQuery& query) {
  if (histogram_ == nullptr) {
    auto hist = FeatureHistogram::FromBTree(btree_.get());
    if (!hist.ok()) return hist.status();
    histogram_ =
        std::make_unique<FeatureHistogram>(std::move(hist).value());
  }
  std::vector<TwigQuery> parts = DecomposeAtDescendantEdges(query);
  FIX_CHECK(!parts.empty());
  const double eps = options_.epsilon;

  if (options_.depth_limit > 0) {
    if (parts[0].Depth() > options_.depth_limit) {
      return btree_->num_entries();  // uncovered: full scan, nothing pruned
    }
    const QueryStep& root = parts[0].steps[parts[0].root];
    if (parts[0].HasWildcard()) {
      return root.wildcard ? btree_->num_entries()
                           : histogram_->LabelCount(root.label);
    }
    FeatureKey probe;
    FIX_ASSIGN_OR_RETURN(probe, QueryFeatures(parts[0]));
    return histogram_->EstimateGreaterEqual(probe.root_label,
                                            probe.lambda_max - eps);
  }
  // Whole-document index: the intersection across sub-twigs is bounded by
  // the most selective part.
  uint64_t best = btree_->num_entries();
  for (size_t i = 0; i < parts.size(); ++i) {
    bool label_ok = (i == 0) &&
                    parts[0].steps[parts[0].root].axis == Axis::kChild &&
                    !parts[0].steps[parts[0].root].wildcard;
    if (parts[i].HasWildcard()) {
      if (i == 0 && label_ok) {
        best = std::min(best,
                        histogram_->LabelCount(parts[0].steps[0].label));
      }
      continue;
    }
    FeatureKey probe;
    FIX_ASSIGN_OR_RETURN(probe, QueryFeatures(parts[i]));
    uint64_t estimate =
        label_ok ? histogram_->EstimateGreaterEqual(probe.root_label,
                                                    probe.lambda_max - eps)
                 : histogram_->EstimateGreaterEqualAllLabels(
                       probe.lambda_max - eps);
    best = std::min(best, estimate);
  }
  return best;
}

Status FixIndex::WriteMeta() const {
  IndexMeta meta;
  meta.options = options_;
  meta.options.path.clear();  // path is where the caller found the file
  meta.next_seq = next_seq_;
  {
    // Readers may be interning query pairs concurrently with the writer's
    // sidecar rewrite; the export must see a consistent table.
    MutexLock lock(*encoder_mu_);
    meta.edge_weights = encoder_.Export();
  }
  meta.storage_format = kPageFormatVersion;
  meta.indexed_docs = indexed_docs_;
  meta.generation = btree_->generation();
  meta.wal_bytes = wal_.state().valid_bytes;
  return WriteFile(options_.path + ".meta", EncodeIndexMeta(meta));
}

Result<FixIndex> FixIndex::Open(
    Corpus* corpus, const std::string& path,
    const std::function<std::unique_ptr<PageIo>()>& page_io_factory,
    const std::function<std::unique_ptr<PageIo>()>& wal_io_factory,
    bool load_spatial_sidecar) {
  std::string meta_buf;
  FIX_ASSIGN_OR_RETURN(meta_buf, ReadFile(path + ".meta"));
  IndexMeta meta;
  FIX_ASSIGN_OR_RETURN(meta, DecodeIndexMeta(meta_buf));
  meta.options.path = path;
  meta.options.page_io_factory = page_io_factory;
  meta.options.wal_io_factory = wal_io_factory;

  FixIndex index(corpus, meta.options);
  index.next_seq_ = meta.next_seq;
  index.indexed_docs_ = meta.indexed_docs;
  index.encoder_.Import(meta.edge_weights);
  index.file_ = page_io_factory != nullptr
                    ? std::make_unique<PageFile>(page_io_factory())
                    : std::make_unique<PageFile>();
  FIX_RETURN_IF_ERROR(index.file_->Open(path, /*create=*/false));
  index.pool_ = std::make_unique<BufferPool>(index.file_.get(),
                                             meta.options.buffer_pool_pages);
  {
    // The log is scanned before the tree so a torn data-file meta page can
    // be rolled forward from it. A missing log (an index persisted before
    // the WAL existed) is recreated empty.
    auto wal = Wal::Open(path + ".wal", kFeatureKeySize, kIndexValueSize,
                         wal_io_factory);
    if (!wal.ok()) return wal.status();
    index.wal_ = std::move(wal).value();
  }
  const WalScanResult& ws = index.wal_.state();
  bool recovered = false;
  {
    auto tree = BTree::Open(index.pool_.get());
    if (!tree.ok() && tree.status().IsCorruption() && ws.has_commit) {
      // The data file's meta page is torn but the log carries a durable
      // commit: rebuild the tree handle from the log's geometry + record.
      tree = BTree::OpenRecovered(index.pool_.get(), ws.key_size,
                                  ws.value_size, ws.last_commit);
      recovered = tree.ok();
    }
    if (!tree.ok()) return tree.status();
    index.btree_ = std::make_unique<BTree>(std::move(tree).value());
  }
  if (ws.has_commit) {
    if (ws.last_commit.generation > index.btree_->generation()) {
      // Roll forward: the crash hit after the commit fsync but before the
      // checkpoint reached the data file's meta page.
      FIX_RETURN_IF_ERROR(index.btree_->AdoptCommit(ws.last_commit));
      recovered = true;
    }
    if (ws.last_commit.generation >= index.btree_->generation()) {
      // The log's commit is the latest durable state; its application
      // fields supersede a sidecar the crash may have left stale.
      index.next_seq_ = static_cast<uint32_t>(ws.last_commit.next_seq);
      index.indexed_docs_ =
          static_cast<uint32_t>(ws.last_commit.indexed_docs);
    }
  }
  const bool dirty = recovered || ws.records > 0 || ws.torn_tail;
  if (dirty) {
    // Something was in flight when the last process died. Reclaim whatever
    // the uncommitted generation left behind, checkpoint the adopted state,
    // and retire the log.
    FIX_RETURN_IF_ERROR(index.ReclaimUnreachable());
    FIX_RETURN_IF_ERROR(index.btree_->Checkpoint());
    FIX_RETURN_IF_ERROR(index.WriteMeta());
    FIX_RETURN_IF_ERROR(index.wal_.Reset());
  }
  if (meta.options.clustered) {
    FIX_RETURN_IF_ERROR(
        index.clustered_.Open(path + ".data", /*create=*/false));
  }
  if (meta.options.value_beta > 0) {
    // Re-interning the bucket labels is idempotent against a restored
    // label table, so hashed labels line up with the persisted encoding.
    index.value_hasher_ = std::make_unique<ValueHasher>(
        corpus->labels(), meta.options.value_beta);
  }
  if (dirty) {
    // Recovery already walked the whole tree; whatever sidecar is on disk
    // may describe the pre-crash generation, so rebuild and re-persist.
    index.RefreshSpatial();
  } else if (load_spatial_sidecar) {
    // Clean open: adopt the sidecar only if it matches the tree exactly.
    // Missing => quiet engine fallback (pre-sidecar index); corrupt or
    // stale => quarantine-style fallback with the damage counted — never a
    // wrong candidate set, and the next commit rewrites it. Callers that
    // skip attach verification skip this load too (it reads and checks the
    // whole sidecar), so a fast open probes through the B+-tree.
    auto loaded = SpatialProbe::LoadSidecar(path + ".spatial", nullptr);
    if (loaded.ok()) {
      if (loaded->generation() == index.btree_->generation() &&
          loaded->total() == index.btree_->num_entries()) {
        index.AttachSpatial(std::make_shared<const SpatialProbe>(
            std::move(loaded).value()));
      } else {
        SpatialSidecarFailures()->Increment();
      }
    } else if (!loaded.status().IsNotFound()) {
      SpatialSidecarFailures()->Increment();
    }
  }
  return index;
}

Status FixIndex::ReclaimUnreachable() {
  std::unordered_set<PageId> reachable;
  FIX_RETURN_IF_ERROR(btree_->VerifyAndCollect(&reachable));
  const PageId num_pages = file_->num_pages();
  std::vector<PageId> spare;
  std::vector<char> scratch(kPageSize);
  const std::vector<char> blank(kPageSize, 0);
  for (PageId p = 1; p < num_pages; ++p) {
    if (reachable.count(p) > 0) continue;
    // Unreachable pages are either intact relics of superseded generations
    // or torn/never-written allocations of the generation the crash killed.
    // The latter would trip a later offline scrub, so restamp them as blank
    // (validly framed, empty) pages before recycling either kind.
    Status valid = file_->ReadPage(p, scratch.data());
    if (valid.IsCorruption()) {
      FIX_RETURN_IF_ERROR(file_->WritePage(p, blank.data()));
    } else if (!valid.ok()) {
      return valid;
    }
    spare.push_back(p);
  }
  btree_->AddReusablePages(spare);
  return Status::OK();
}

Result<FeatureKey> FixIndex::QueryFeatures(const TwigQuery& subtwig) {
  BisimGraph pattern;
  FIX_ASSIGN_OR_RETURN(pattern,
                       QueryToBisimGraph(subtwig, value_hasher_.get()));
  DenseMatrix m(0);
  {
    // Query patterns may contain label pairs the corpus never produced;
    // weighting them interns into the shared encoder, which concurrent
    // lookups must serialize. The eigensolve below stays outside the lock.
    MutexLock lock(*encoder_mu_);
    m = BuildSkewMatrix(pattern, &encoder_);
  }
  if (!options_.sound_probe) {
    auto sigmas = SkewSpectrum(m);
    if (sigmas.ok()) {
      return MakeKey(pattern.vertex(pattern.root()).label,
                     EigPairFromSpectrum(*sigmas));
    }
    // Eigensolver failure on a (huge) query pattern: fall through to the
    // pairwise bound below — sound, merely less selective.
  }
  // Sound relaxation: probe with the largest single edge weight. Each edge
  // of the query pattern survives any homomorphic image as a 2-vertex
  // induced subgraph of the data pattern, so Theorem 3 applies to it even
  // when the full pattern embeds non-induced or quotiented.
  double max_w = 0;
  for (size_t i = 0; i < m.n(); ++i) {
    for (size_t j = 0; j < m.n(); ++j) {
      max_w = std::max(max_w, m.at(i, j));
    }
  }
  FeatureKey key;
  key.root_label = pattern.vertex(pattern.root()).label;
  key.lambda_max = max_w;
  key.lambda_min = -max_w;
  key.lambda2 = 0;
  return key;
}

Result<FixIndex::LookupResult> FixIndex::Probe(const TwigQuery& subtwig,
                                               bool use_root_label) {
  return ProbeWithEngine(subtwig, use_root_label, options_.probe_engine);
}

Result<FixIndex::LookupResult> FixIndex::ProbeWithEngine(
    const TwigQuery& subtwig, bool use_root_label, ProbeEngine engine) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  static Counter* probes = registry.FindOrCreateCounter(
      "fix.index.probe.count", "ops", "containment range probes");
  static Histogram* probe_us = registry.FindOrCreateHistogram(
      "fix.index.probe_us", "us", "containment probe latency");
  static Counter* engine_btree = registry.FindOrCreateCounter(
      "fix.index.probe.engine.btree", "ops",
      "probes answered by the B+-tree engine");
  static Counter* engine_spatial = registry.FindOrCreateCounter(
      "fix.index.probe.engine.spatial", "ops",
      "probes answered by the spatial (kd-tree) engine");
  TraceSpan span("index.probe");
  Timer timer;
  FeatureKey probe;
  FIX_ASSIGN_OR_RETURN(probe, QueryFeatures(subtwig));

  std::shared_ptr<const SpatialProbe> spatial;
  if (engine != ProbeEngine::kBTree) {
    MutexLock lock(*spatial_mu_);
    spatial = spatial_;
  }
  LookupResult out;
  if (spatial != nullptr) {
    // The snapshot stays pinned for this probe even if a concurrent commit
    // publishes a successor — same discipline as the B+-tree generation.
    out = ProbeSpatial(*spatial, probe, use_root_label);
    engine_spatial->Increment();
  } else {
    // kBTree, or kSpatial/kAuto with nothing resident (missing/corrupt
    // sidecar, failed refresh): the B+-tree always answers. A degraded
    // engine choice can cost time, never correctness.
    FIX_ASSIGN_OR_RETURN(out, ProbeBTree(probe, use_root_label));
    engine_btree->Increment();
  }
  probes->Increment();
  probe_us->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  span.AddAttr("engine", spatial != nullptr ? std::string_view("spatial")
                                            : std::string_view("btree"));
  span.AddAttr("entries_scanned", out.entries_scanned);
  span.AddAttr("candidates", static_cast<uint64_t>(out.candidates.size()));
  return out;
}

FixIndex::LookupResult FixIndex::ProbeSpatial(const SpatialProbe& spatial,
                                              const FeatureKey& probe,
                                              bool use_root_label) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  static Counter* visited_total = registry.FindOrCreateCounter(
      "fix.index.spatial.visited", "nodes",
      "kd-tree nodes visited by spatial probes");
  static Histogram* visited_hist = registry.FindOrCreateHistogram(
      "fix.index.spatial.visited_nodes", "nodes",
      "kd-tree nodes visited per spatial probe");
  const double eps = options_.epsilon;
  // The bounds are the SAME expressions ProbeBTree encodes into its memcmp
  // slices; comparing their ord-u64 images is memcmp on the encoded key,
  // which is what makes the two engines byte-identical.
  SpatialProbe::Filter filter;
  filter.min_lmax = OrderPreservingDouble(probe.lambda_max - eps);
  filter.max_lmin = OrderPreservingDouble(probe.lambda_min + eps);
  if (options_.use_lambda2 && !options_.sound_probe) {
    filter.min_l2 = OrderPreservingDouble(probe.lambda2 - eps);
  }
  uint64_t visited = 0;
  std::vector<SpatialProbe::Hit> hits;
  if (use_root_label) {
    spatial.Probe(probe.root_label, filter, &hits, &visited);
  } else {
    spatial.ProbeAll(filter, &hits, &visited);
  }
  LookupResult out;
  // The probe-cost accounting under this engine: kd-tree nodes touched
  // (the spatial analogue of B+-tree rows scanned).
  out.entries_scanned = visited;
  out.candidates.reserve(hits.size());
  for (const SpatialProbe::Hit& h : hits) {
    out.candidates.push_back(
        Candidate{h.key, h.value.ref, h.value.clustered_offset});
  }
  visited_total->Add(visited);
  visited_hist->Record(visited);
  return out;
}

void FixIndex::AttachSpatial(std::shared_ptr<const SpatialProbe> probe) {
  MutexLock lock(*spatial_mu_);
  spatial_ = std::move(probe);
}

void FixIndex::RefreshSpatial() {
  auto rebuilt = SpatialProbe::FromBTree(btree_.get());
  if (!rebuilt.ok()) {
    // A failed refresh costs pruning power only: clear the snapshot so new
    // probes fall back to the B+-tree instead of serving a generation
    // behind. Readers that already copied the old snapshot finish on it.
    AttachSpatial(nullptr);
    SpatialSidecarFailures()->Increment();
    return;
  }
  AttachSpatial(std::make_shared<const SpatialProbe>(
      std::move(rebuilt).value()));
  SpatialRebuilds()->Increment();
  PersistSpatial();
}

void FixIndex::PersistSpatial() {
  std::shared_ptr<const SpatialProbe> snapshot = spatial_probe();
  if (snapshot == nullptr) return;
  // Plain-file backend on purpose: the sidecar is a rebuildable cache, its
  // CRC framing catches tears on load, and routing it through the data
  // file's fault-injected factory would consume crash/tear budgets the
  // recovery tests arm for B+-tree pages.
  Status status =
      snapshot->WriteSidecar(options_.path + ".spatial", nullptr);
  if (!status.ok()) SpatialSidecarFailures()->Increment();
}

Result<FixIndex::LookupResult> FixIndex::ProbeBTree(const FeatureKey& probe,
                                                    bool use_root_label) {
  LookupResult out;
  const double eps = options_.epsilon;

  BTree::Iterator it;
  if (use_root_label) {
    // Seek to the first entry with this root label and λ_max >= probe − ε;
    // everything after it in the (label, λ_max) order satisfies the λ_max
    // half of the containment test until the label changes.
    FeatureKey seek_key;
    seek_key.root_label = probe.root_label;
    seek_key.lambda_max = probe.lambda_max - eps;
    seek_key.lambda_min = -std::numeric_limits<double>::infinity();
    seek_key.lambda2 = -std::numeric_limits<double>::infinity();
    seek_key.seq = 0;
    FIX_ASSIGN_OR_RETURN(it, btree_->Seek(EncodeFeatureKey(seek_key)));
  } else {
    // Label pruning unsound for this probe (descendant-rooted query against
    // whole-document units): scan all entries, filter on eigenvalues only.
    FIX_ASSIGN_OR_RETURN(it, btree_->SeekFirst());
  }
  // The containment filters compare encoded key slices directly (the
  // layout is memcmp-ordered); keys are only decoded for candidates.
  char label_bytes[4];
  EncodeBigEndian32(label_bytes, probe.root_label);
  char lmax_lo[8];
  EncodeBigEndian64(lmax_lo,
                    OrderPreservingDouble(probe.lambda_max - eps));
  char lmin_hi[8];
  EncodeBigEndian64(lmin_hi,
                    OrderPreservingDouble(probe.lambda_min + eps));
  char l2_lo[8];
  EncodeBigEndian64(l2_lo, OrderPreservingDouble(probe.lambda2 - eps));
  const bool filter_l2 = options_.use_lambda2 && !options_.sound_probe;

  while (it.Valid()) {
    std::string_view key = it.key();
    if (use_root_label && std::memcmp(key.data(), label_bytes, 4) != 0) {
      break;
    }
    ++out.entries_scanned;
    bool pass = std::memcmp(key.data() + 4, lmax_lo, 8) >= 0 &&
                std::memcmp(key.data() + 12, lmin_hi, 8) <= 0;
    if (pass && filter_l2) {
      pass = std::memcmp(key.data() + 20, l2_lo, 8) >= 0;
    }
    if (pass) {
      IndexValue v = DecodeIndexValue(it.value());
      out.candidates.push_back(
          Candidate{DecodeFeatureKey(key), v.ref, v.clustered_offset});
    }
    FIX_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Result<FixIndex::LookupResult> FixIndex::LabelOnlyScan(LabelId label) {
  // Wildcard degradation: every entry with this root label is a candidate
  // (no spectral filter — a wildcard edge has no weight to compare).
  LookupResult out;
  FeatureKey seek_key;
  seek_key.root_label = label;
  seek_key.lambda_max = -std::numeric_limits<double>::infinity();
  seek_key.lambda_min = -std::numeric_limits<double>::infinity();
  seek_key.lambda2 = -std::numeric_limits<double>::infinity();
  BTree::Iterator it;
  FIX_ASSIGN_OR_RETURN(it, btree_->Seek(EncodeFeatureKey(seek_key)));
  char label_bytes[4];
  EncodeBigEndian32(label_bytes, label);
  while (it.Valid()) {
    std::string_view key = it.key();
    if (std::memcmp(key.data(), label_bytes, 4) != 0) break;
    ++out.entries_scanned;
    IndexValue v = DecodeIndexValue(it.value());
    out.candidates.push_back(
        Candidate{DecodeFeatureKey(key), v.ref, v.clustered_offset});
    FIX_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Result<FixIndex::LookupResult> FixIndex::Lookup(const TwigQuery& query) {
  std::vector<TwigQuery> parts = DecomposeAtDescendantEdges(query);
  FIX_CHECK(!parts.empty());

  if (options_.depth_limit > 0) {
    // Coverage check (Algorithm 2 step 1): the index answers the top
    // sub-twig only if its pattern depth fits within the limit. Deeper
    // documents were indexed as single units too (limit 0 path), so a
    // depth-limited index strictly covers patterns of depth <= L.
    LookupResult out;
    if (parts[0].Depth() > options_.depth_limit) {
      out.covered = false;
      return out;
    }
    if (parts[0].HasWildcard()) {
      // Spectral probing unavailable; prune by root label if it is
      // concrete, otherwise hand the query to the full scan.
      const QueryStep& root = parts[0].steps[parts[0].root];
      if (root.wildcard) {
        out.covered = false;
        return out;
      }
      return LabelOnlyScan(root.label);
    }
    // Interior descendant sub-twigs give no pruning power here (Section 5).
    return Probe(parts[0]);
  }

  // Whole-document index: every sub-twig prunes; candidates must appear in
  // the intersection of per-sub-twig candidate documents. Root-label
  // pruning is only sound for the top sub-twig of a rooted (/) query —
  // a descendant-rooted pattern can match below the document root, whose
  // label is what whole-document entries carry.
  LookupResult merged;
  std::vector<Candidate> first_candidates;
  std::set<uint32_t> surviving;
  for (size_t i = 0; i < parts.size(); ++i) {
    bool label_ok = (i == 0) &&
                    parts[0].steps[parts[0].root].axis == Axis::kChild &&
                    !parts[0].steps[parts[0].root].wildcard;
    LookupResult part;
    if (parts[i].HasWildcard()) {
      if (i != 0) continue;  // later wildcard parts contribute no pruning
      if (label_ok) {
        FIX_ASSIGN_OR_RETURN(part, LabelOnlyScan(parts[0].steps[0].label));
      } else {
        // No usable feature on the top part: fall back to the full scan.
        LookupResult out;
        out.covered = false;
        return out;
      }
    } else {
      FIX_ASSIGN_OR_RETURN(part, Probe(parts[i], label_ok));
    }
    merged.entries_scanned += part.entries_scanned;
    std::set<uint32_t> docs;
    for (const Candidate& c : part.candidates) {
      docs.insert(c.ref.doc_id);
    }
    if (i == 0) {
      first_candidates = std::move(part.candidates);
      surviving = std::move(docs);
    } else {
      std::set<uint32_t> kept;
      std::set_intersection(surviving.begin(), surviving.end(), docs.begin(),
                            docs.end(), std::inserter(kept, kept.begin()));
      surviving = std::move(kept);
    }
  }
  for (Candidate& c : first_candidates) {
    if (surviving.count(c.ref.doc_id) > 0) merged.candidates.push_back(c);
  }
  return merged;
}

}  // namespace fix
