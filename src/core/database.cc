#include "core/database.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <thread>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "query/xpath_parser.h"

namespace fix {

namespace {

// Process-wide mirrors of the per-instance StorageHealth counters: health()
// stays the per-database view tests assert on; these accumulate across every
// Database in the process (docs/OBSERVABILITY.md).
Counter& CorruptionEvents() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.corruption_events", "ops",
      "checksum/coverage failures detected");
  return *c;
}
Counter& QuarantinedIndexes() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.quarantined_indexes", "ops",
      "indexes renamed aside after damage");
  return *c;
}
Counter& DegradedQueries() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.degraded_queries", "ops",
      "queries answered by full scan because of quarantine");
  return *c;
}
Counter& Rebuilds() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.rebuilds", "ops", "successful RebuildIndex calls");
  return *c;
}
Gauge& OpenIndexes() {
  static Gauge* g = MetricsRegistry::Instance().FindOrCreateGauge(
      "fix.db.open_indexes", "indexes",
      "attached (non-quarantined) indexes across live databases");
  return *g;
}
Counter& BatchQueries() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.db.batch_queries", "ops",
      "queries executed through Database::ExecuteMany");
  return *c;
}

/// Renames `path` to `path + ".quarantined"` if it exists (best effort:
/// quarantine must not fail recovery, so errors are logged, not returned).
void QuarantineFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  std::filesystem::rename(path, path + ".quarantined", ec);
  if (ec) {
    FIX_LOG(Error) << "quarantine rename failed for " << path << ": "
                   << ec.message();
  }
}

void RemoveIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

Database::~Database() {
  OpenIndexes().Add(-static_cast<int64_t>(indexes_.size()));
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& workdir,
                                                 OpenOptions options) {
  auto db = std::make_unique<Database>(workdir);
  db->open_options_ = std::move(options);
  {
    Result<Corpus> corpus = Corpus::Load(workdir);
    FIX_RETURN_IF_ERROR(corpus.status());
    db->corpus_ = std::move(corpus).value();
  }
  // Attach every index in the directory; corrupt ones degrade, they never
  // abort recovery.
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(workdir, ec)) {
    if (entry.path().extension() == ".fix") {
      names.push_back(entry.path().stem().string());
    }
  }
  if (ec) {
    return Status::IOError("cannot list " + workdir + ": " + ec.message());
  }
  std::sort(names.begin(), names.end());  // deterministic attach order
  for (const std::string& name : names) {
    FIX_RETURN_IF_ERROR(db->AttachOrQuarantine(name));
  }
  return db;
}

void Database::QuarantineIndex(const std::string& name, const Status& why) {
  {
    WriterMutexLock lock(mu_);
    if (degraded_.count(name) > 0) {
      // Another observer of the same damage already quarantined this name;
      // the files are renamed and the handle detached. Nothing to redo.
      return;
    }
    for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
      if (it->first == name) {
        // Detaching drops this Database's reference; queries that copied
        // the shared_ptr before the quarantine finish against the old
        // object, which closes its files when the last reference dies.
        indexes_.erase(it);
        OpenIndexes().Add(-1);
        break;
      }
    }
    degraded_.insert(name);
  }
  FIX_LOG(Error) << "index '" << name << "' quarantined: " << why.ToString()
                 << " — queries fall back to full scan until RebuildIndex";
  const std::string path = IndexPath(name);
  QuarantineFile(path);
  QuarantineFile(path + ".meta");
  QuarantineFile(path + ".data");
  QuarantineFile(path + ".wal");
  QuarantineFile(path + ".spatial");
  {
    MutexLock lock(health_mu_);
    ++health_.quarantined_indexes;
  }
  QuarantinedIndexes().Increment();
}

Status Database::AttachOrQuarantine(const std::string& name) {
  auto opened =
      FixIndex::Open(&corpus_, IndexPath(name), open_options_.page_io_factory,
                     open_options_.wal_io_factory,
                     /*load_spatial_sidecar=*/open_options_.verify_on_attach);
  Status failure = opened.status();
  if (opened.ok()) {
    auto idx = std::make_shared<FixIndex>(std::move(opened).value());
    if (open_options_.verify_on_attach) {
      const uint32_t covered = idx->indexed_docs();
      if (covered != kIndexedDocsUnknown &&
          covered != corpus_.num_docs()) {
        // Internally consistent but missing documents: the signature of a
        // crash between corpus growth and the index's meta write. No
        // checksum catches this; only the coverage count does.
        failure = Status::Corruption(
            "stale index: covers " + std::to_string(covered) + " of " +
            std::to_string(corpus_.num_docs()) + " documents");
      } else {
        failure = idx->Verify();
      }
    }
    if (failure.ok()) {
      WriterMutexLock lock(mu_);
      indexes_.emplace_back(name, std::move(idx));
      OpenIndexes().Add(1);
      return Status::OK();
    }
    // idx is destroyed (closing its files) before the quarantine rename.
  }
  if (failure.IsCorruption() || failure.IsIOError() || failure.IsNotFound()) {
    {
      MutexLock lock(health_mu_);
      ++health_.corruption_events;
    }
    CorruptionEvents().Increment();
    QuarantineIndex(name, failure);
    return Status::OK();
  }
  return failure;  // unexpected (e.g. InvalidArgument): a bug, not damage
}

Result<FixIndex*> Database::BuildIndex(const std::string& name,
                                       IndexOptions options,
                                       BuildStats* stats) {
  options.path = IndexPath(name);
  if (options.page_io_factory == nullptr) {
    options.page_io_factory = open_options_.page_io_factory;
  }
  if (options.wal_io_factory == nullptr) {
    options.wal_io_factory = open_options_.wal_io_factory;
  }
  // Route through a local BuildStats when the caller passed none, so the
  // feature-cache counters still reach health().
  BuildStats local;
  BuildStats* effective = stats != nullptr ? stats : &local;
  auto built = FixIndex::Build(&corpus_, options, effective);
  if (!built.ok()) return built.status();
  {
    MutexLock lock(health_mu_);
    health_.feature_cache_hits += effective->feature_cache_hits;
    health_.feature_cache_misses += effective->feature_cache_misses;
    health_.feature_cache_evictions += effective->feature_cache_evictions;
  }
  WriterMutexLock lock(mu_);
  indexes_.emplace_back(name,
                        std::make_shared<FixIndex>(std::move(built).value()));
  OpenIndexes().Add(1);
  return indexes_.back().second.get();
}

Result<FixIndex*> Database::AttachIndex(const std::string& name) {
  auto opened =
      FixIndex::Open(&corpus_, IndexPath(name), open_options_.page_io_factory,
                     open_options_.wal_io_factory);
  if (!opened.ok()) return opened.status();
  WriterMutexLock lock(mu_);
  indexes_.emplace_back(name,
                        std::make_shared<FixIndex>(std::move(opened).value()));
  OpenIndexes().Add(1);
  return indexes_.back().second.get();
}

Result<FixIndex*> Database::RebuildIndex(const std::string& name,
                                         IndexOptions options,
                                         BuildStats* stats) {
  static constexpr const char* kParts[] = {"", ".meta", ".data", ".wal",
                                           ".spatial"};
  const std::string path = IndexPath(name);
  const std::string side = path + ".rebuild";
  // Build the replacement at a side path while the old index (if any) keeps
  // answering queries — an online rebuild with zero degraded window. A
  // build failure leaves the old index exactly as it was.
  for (const char* part : kParts) RemoveIfExists(side + part);
  options.path = side;
  if (options.page_io_factory == nullptr) {
    options.page_io_factory = open_options_.page_io_factory;
  }
  if (options.wal_io_factory == nullptr) {
    options.wal_io_factory = open_options_.wal_io_factory;
  }
  BuildStats local;
  BuildStats* effective = stats != nullptr ? stats : &local;
  {
    auto built = FixIndex::Build(&corpus_, options, effective);
    if (!built.ok()) {
      for (const char* part : kParts) RemoveIfExists(side + part);
      return built.status();
    }
    // The fresh handle closes its files here; the swap below renames them
    // into place and reopens.
  }
  {
    MutexLock lock(health_mu_);
    health_.feature_cache_hits += effective->feature_cache_hits;
    health_.feature_cache_misses += effective->feature_cache_misses;
    health_.feature_cache_evictions += effective->feature_cache_evictions;
  }
  // Swing the files into place. The old index's open descriptors — and any
  // in-flight query holding its shared_ptr — keep the old inodes alive
  // until the last reference dies.
  for (const char* part : kParts) {
    const std::string from = side + part;
    const std::string to = path + part;
    std::error_code ec;
    if (std::filesystem::exists(from, ec)) {
      std::filesystem::rename(from, to, ec);
      if (ec) {
        return Status::IOError("rebuild swap failed for " + to + ": " +
                               ec.message());
      }
    } else {
      RemoveIfExists(to);  // layout change, e.g. clustered -> unclustered
    }
    RemoveIfExists(to + ".quarantined");
  }
  auto reopened = FixIndex::Open(&corpus_, path, options.page_io_factory,
                                 options.wal_io_factory);
  if (!reopened.ok()) return reopened.status();
  auto fresh = std::make_shared<FixIndex>(std::move(reopened).value());
  FixIndex* handle = fresh.get();
  {
    WriterMutexLock lock(mu_);
    bool replaced = false;
    for (auto& [n, idx] : indexes_) {
      if (n == name) {
        idx = std::move(fresh);  // old handle freed once readers drain
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      indexes_.emplace_back(name, std::move(fresh));
      OpenIndexes().Add(1);
    }
    degraded_.erase(name);
  }
  {
    MutexLock lock(health_mu_);
    ++health_.rebuilds;
  }
  Rebuilds().Increment();
  return handle;
}

FixIndex* Database::index(const std::string& name) {
  ReaderMutexLock lock(mu_);
  for (auto& [n, idx] : indexes_) {
    if (n == name) return idx.get();
  }
  return nullptr;
}

std::shared_ptr<FixIndex> Database::SharedIndex(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  for (const auto& [n, idx] : indexes_) {
    if (n == name) return idx;
  }
  return nullptr;
}

Result<TwigQuery> Database::Compile(const std::string& xpath) {
  if (auto cached = plan_cache_.Lookup(xpath)) return *cached;
  MutexLock lock(compile_mu_);
  // Double-checked: a racing compile of the same string may have landed
  // while we waited for the lock.
  if (auto cached = plan_cache_.Lookup(xpath)) return *cached;
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, ParseXPath(xpath));
  q.ResolveLabels(corpus_.labels());
  plan_cache_.Insert(xpath, q);
  return q;
}

void Database::BumpDegradedQuery() {
  {
    MutexLock lock(health_mu_);
    ++health_.degraded_queries;
  }
  DegradedQueries().Increment();
}

Result<ExecStats> Database::QueryInternal(const std::string& index_name,
                                          const TwigQuery& q,
                                          std::vector<NodeRef>* results,
                                          ThreadPool* pool) {
  bool is_degraded = false;
  std::shared_ptr<FixIndex> idx;
  {
    ReaderMutexLock lock(mu_);
    is_degraded = degraded_.count(index_name) > 0;
    if (!is_degraded) {
      for (const auto& [n, p] : indexes_) {
        if (n == index_name) {
          idx = p;
          break;
        }
      }
    }
  }
  if (is_degraded) {
    BumpDegradedQuery();
    ExecStats stats;
    FIX_ASSIGN_OR_RETURN(stats, FullScanExecute(&corpus_, q, results,
                                                /*total_entries=*/0, pool));
    stats.degraded = true;
    return stats;
  }
  if (idx == nullptr) {
    return Status::NotFound("no index named " + index_name);
  }
  FixQueryProcessor processor(&corpus_, idx.get(), pool);
  Result<ExecStats> executed = processor.Execute(q, results);
  if (executed.ok()) return executed;
  if (executed.status().IsCorruption() || executed.status().IsIOError()) {
    // Damage surfaced mid-query (a checksum failure on a lazily-read page,
    // say). Quarantine the index and answer from the ground truth — the
    // caller gets a correct result and a degraded-mode flag, never the
    // corruption masked as an empty result set. Concurrent observers of
    // the same damage race benignly: QuarantineIndex is idempotent, and
    // every loser re-answers by full scan exactly like the winner.
    {
      MutexLock lock(health_mu_);
      ++health_.corruption_events;
    }
    CorruptionEvents().Increment();
    QuarantineIndex(index_name, executed.status());
    BumpDegradedQuery();
    ExecStats stats;
    FIX_ASSIGN_OR_RETURN(stats, FullScanExecute(&corpus_, q, results,
                                                /*total_entries=*/0, pool));
    stats.degraded = true;
    return stats;
  }
  return executed;
}

Result<ExecStats> Database::Query(const std::string& index_name,
                                  const std::string& xpath,
                                  std::vector<NodeRef>* results) {
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, Compile(xpath));
  return QueryInternal(index_name, q, results, /*pool=*/nullptr);
}

Result<std::vector<Database::BatchQueryOutcome>> Database::ExecuteMany(
    const std::string& index_name, const std::vector<std::string>& xpaths,
    int threads) {
  size_t n = threads > 0 ? static_cast<size_t>(threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  n = std::min<size_t>(n, 64);
  std::unique_ptr<ThreadPool> pool;
  if (n > 1) pool = std::make_unique<ThreadPool>(n);

  // Queries run in order, each fanning its own refinement over the pool:
  // per-document work units are disjoint and merge deterministically, so
  // the batch's outcome is byte-identical across thread counts.
  std::vector<BatchQueryOutcome> outcomes(xpaths.size());
  for (size_t i = 0; i < xpaths.size(); ++i) {
    BatchQueryOutcome& out = outcomes[i];
    auto compiled = Compile(xpaths[i]);
    if (!compiled.ok()) {
      out.status = compiled.status();
      continue;
    }
    auto executed =
        QueryInternal(index_name, *compiled, &out.results, pool.get());
    if (!executed.ok()) {
      if (executed.status().IsNotFound()) return executed.status();
      out.status = executed.status();
      continue;
    }
    out.stats = std::move(executed).value();
    BatchQueries().Increment();
  }
  return outcomes;
}

}  // namespace fix
