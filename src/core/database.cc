#include "core/database.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "query/xpath_parser.h"

namespace fix {

namespace {

// Process-wide mirrors of the per-instance StorageHealth counters: health()
// stays the per-database view tests assert on; these accumulate across every
// Database in the process (docs/OBSERVABILITY.md).
Counter& CorruptionEvents() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.corruption_events", "ops",
      "checksum/coverage failures detected");
  return *c;
}
Counter& QuarantinedIndexes() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.quarantined_indexes", "ops",
      "indexes renamed aside after damage");
  return *c;
}
Counter& DegradedQueries() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.degraded_queries", "ops",
      "queries answered by full scan because of quarantine");
  return *c;
}
Counter& Rebuilds() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.storage.rebuilds", "ops", "successful RebuildIndex calls");
  return *c;
}
Gauge& OpenIndexes() {
  static Gauge* g = MetricsRegistry::Instance().FindOrCreateGauge(
      "fix.db.open_indexes", "indexes",
      "attached (non-quarantined) indexes across live databases");
  return *g;
}

/// Renames `path` to `path + ".quarantined"` if it exists (best effort:
/// quarantine must not fail recovery, so errors are logged, not returned).
void QuarantineFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  std::filesystem::rename(path, path + ".quarantined", ec);
  if (ec) {
    FIX_LOG(Error) << "quarantine rename failed for " << path << ": "
                   << ec.message();
  }
}

void RemoveIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

Database::~Database() {
  OpenIndexes().Add(-static_cast<int64_t>(indexes_.size()));
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& workdir,
                                                 OpenOptions options) {
  auto db = std::make_unique<Database>(workdir);
  db->open_options_ = std::move(options);
  {
    Result<Corpus> corpus = Corpus::Load(workdir);
    FIX_RETURN_IF_ERROR(corpus.status());
    db->corpus_ = std::move(corpus).value();
  }
  // Attach every index in the directory; corrupt ones degrade, they never
  // abort recovery.
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(workdir, ec)) {
    if (entry.path().extension() == ".fix") {
      names.push_back(entry.path().stem().string());
    }
  }
  if (ec) {
    return Status::IOError("cannot list " + workdir + ": " + ec.message());
  }
  std::sort(names.begin(), names.end());  // deterministic attach order
  for (const std::string& name : names) {
    FIX_RETURN_IF_ERROR(db->AttachOrQuarantine(name));
  }
  return db;
}

void Database::QuarantineIndex(const std::string& name, const Status& why) {
  FIX_LOG(Error) << "index '" << name << "' quarantined: " << why.ToString()
                 << " — queries fall back to full scan until RebuildIndex";
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->first == name) {
      indexes_.erase(it);
      OpenIndexes().Add(-1);
      break;
    }
  }
  const std::string path = IndexPath(name);
  QuarantineFile(path);
  QuarantineFile(path + ".meta");
  QuarantineFile(path + ".data");
  degraded_.insert(name);
  ++health_.quarantined_indexes;
  QuarantinedIndexes().Increment();
}

Status Database::AttachOrQuarantine(const std::string& name) {
  auto opened =
      FixIndex::Open(&corpus_, IndexPath(name), open_options_.page_io_factory);
  Status failure = opened.status();
  if (opened.ok()) {
    auto idx = std::make_unique<FixIndex>(std::move(opened).value());
    if (open_options_.verify_on_attach) {
      const uint32_t covered = idx->indexed_docs();
      if (covered != kIndexedDocsUnknown &&
          covered != corpus_.num_docs()) {
        // Internally consistent but missing documents: the signature of a
        // crash between corpus growth and the index's meta write. No
        // checksum catches this; only the coverage count does.
        failure = Status::Corruption(
            "stale index: covers " + std::to_string(covered) + " of " +
            std::to_string(corpus_.num_docs()) + " documents");
      } else {
        failure = idx->Verify();
      }
    }
    if (failure.ok()) {
      indexes_.emplace_back(name, std::move(idx));
      OpenIndexes().Add(1);
      return Status::OK();
    }
    // idx is destroyed (closing its files) before the quarantine rename.
  }
  if (failure.IsCorruption() || failure.IsIOError() || failure.IsNotFound()) {
    ++health_.corruption_events;
    CorruptionEvents().Increment();
    QuarantineIndex(name, failure);
    return Status::OK();
  }
  return failure;  // unexpected (e.g. InvalidArgument): a bug, not damage
}

Result<FixIndex*> Database::BuildIndex(const std::string& name,
                                       IndexOptions options,
                                       BuildStats* stats) {
  options.path = IndexPath(name);
  if (options.page_io_factory == nullptr) {
    options.page_io_factory = open_options_.page_io_factory;
  }
  // Route through a local BuildStats when the caller passed none, so the
  // feature-cache counters still reach health().
  BuildStats local;
  BuildStats* effective = stats != nullptr ? stats : &local;
  auto built = FixIndex::Build(&corpus_, options, effective);
  if (!built.ok()) return built.status();
  health_.feature_cache_hits += effective->feature_cache_hits;
  health_.feature_cache_misses += effective->feature_cache_misses;
  health_.feature_cache_evictions += effective->feature_cache_evictions;
  indexes_.emplace_back(name,
                        std::make_unique<FixIndex>(std::move(built).value()));
  OpenIndexes().Add(1);
  return indexes_.back().second.get();
}

Result<FixIndex*> Database::AttachIndex(const std::string& name) {
  auto opened =
      FixIndex::Open(&corpus_, IndexPath(name), open_options_.page_io_factory);
  if (!opened.ok()) return opened.status();
  indexes_.emplace_back(name,
                        std::make_unique<FixIndex>(std::move(opened).value()));
  OpenIndexes().Add(1);
  return indexes_.back().second.get();
}

Result<FixIndex*> Database::RebuildIndex(const std::string& name,
                                         IndexOptions options,
                                         BuildStats* stats) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->first == name) {
      indexes_.erase(it);
      OpenIndexes().Add(-1);
      break;
    }
  }
  degraded_.erase(name);
  const std::string path = IndexPath(name);
  for (const std::string& p :
       {path, path + ".meta", path + ".data", path + ".quarantined",
        path + ".meta.quarantined", path + ".data.quarantined"}) {
    RemoveIfExists(p);
  }
  auto rebuilt = BuildIndex(name, std::move(options), stats);
  if (rebuilt.ok()) {
    ++health_.rebuilds;
    Rebuilds().Increment();
  }
  return rebuilt;
}

FixIndex* Database::index(const std::string& name) {
  for (auto& [n, idx] : indexes_) {
    if (n == name) return idx.get();
  }
  return nullptr;
}

Result<TwigQuery> Database::Compile(const std::string& xpath) {
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, ParseXPath(xpath));
  q.ResolveLabels(corpus_.labels());
  return q;
}

Result<ExecStats> Database::Query(const std::string& index_name,
                                  const std::string& xpath,
                                  std::vector<NodeRef>* results) {
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, Compile(xpath));
  if (degraded_.count(index_name) > 0) {
    ++health_.degraded_queries;
    DegradedQueries().Increment();
    ExecStats stats;
    FIX_ASSIGN_OR_RETURN(stats,
                         FullScanExecute(&corpus_, q, results, /*total=*/0));
    stats.degraded = true;
    return stats;
  }
  FixIndex* idx = index(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index named " + index_name);
  }
  FixQueryProcessor processor(&corpus_, idx);
  Result<ExecStats> executed = processor.Execute(q, results);
  if (executed.ok()) return executed;
  if (executed.status().IsCorruption() || executed.status().IsIOError()) {
    // Damage surfaced mid-query (a checksum failure on a lazily-read page,
    // say). Quarantine the index and answer from the ground truth — the
    // caller gets a correct result and a degraded-mode flag, never the
    // corruption masked as an empty result set.
    ++health_.corruption_events;
    CorruptionEvents().Increment();
    QuarantineIndex(index_name, executed.status());
    ++health_.degraded_queries;
    DegradedQueries().Increment();
    ExecStats stats;
    FIX_ASSIGN_OR_RETURN(stats,
                         FullScanExecute(&corpus_, q, results, /*total=*/0));
    stats.degraded = true;
    return stats;
  }
  return executed;
}

}  // namespace fix
