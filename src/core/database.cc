#include "core/database.h"

#include "query/xpath_parser.h"

namespace fix {

Result<FixIndex*> Database::BuildIndex(const std::string& name,
                                       IndexOptions options,
                                       BuildStats* stats) {
  options.path = workdir_ + "/" + name + ".fix";
  auto built = FixIndex::Build(&corpus_, options, stats);
  if (!built.ok()) return built.status();
  indexes_.emplace_back(name,
                        std::make_unique<FixIndex>(std::move(built).value()));
  return indexes_.back().second.get();
}

Result<FixIndex*> Database::AttachIndex(const std::string& name) {
  auto opened = FixIndex::Open(&corpus_, workdir_ + "/" + name + ".fix");
  if (!opened.ok()) return opened.status();
  indexes_.emplace_back(name,
                        std::make_unique<FixIndex>(std::move(opened).value()));
  return indexes_.back().second.get();
}

FixIndex* Database::index(const std::string& name) {
  for (auto& [n, idx] : indexes_) {
    if (n == name) return idx.get();
  }
  return nullptr;
}

Result<TwigQuery> Database::Compile(const std::string& xpath) {
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, ParseXPath(xpath));
  q.ResolveLabels(corpus_.labels());
  return q;
}

Result<ExecStats> Database::Query(const std::string& index_name,
                                  const std::string& xpath,
                                  std::vector<NodeRef>* results) {
  FixIndex* idx = index(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index named " + index_name);
  }
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, Compile(xpath));
  FixQueryProcessor processor(&corpus_, idx);
  return processor.Execute(q, results);
}

}  // namespace fix
