#include "core/sharded_database.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "common/bytes.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/persist.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace fix {

namespace {

constexpr char kManifestName[] = "shards.manifest";
constexpr char kMasterLabelsName[] = "labels.master";
constexpr uint32_t kManifestMagic = 0x48535846;  // "FXSH" little-endian
constexpr uint32_t kManifestVersion = 1;
constexpr uint32_t kMaxShards = 256;

Counter& Scatters() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.shard.scatters", "ops",
      "queries fanned out across shards by ShardedDatabase");
  return *c;
}
Counter& ScatterLegs() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.shard.legs", "ops", "per-shard query legs executed");
  return *c;
}
Counter& DegradedLegs() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.shard.degraded_legs", "ops",
      "scatter legs answered by full scan (shard quarantined)");
  return *c;
}
Counter& ShardInserts() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.shard.inserts", "ops",
      "documents routed and committed through a sharded write path");
  return *c;
}
Counter& Rebalances() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.shard.rebalances", "ops",
      "completed online shard split/rebalance operations");
  return *c;
}
Gauge& OpenShards() {
  static Gauge* g = MetricsRegistry::Instance().FindOrCreateGauge(
      "fix.shard.open_shards", "shards",
      "shards attached across live sharded databases");
  return *g;
}
Histogram& FanoutLatency() {
  static Histogram* h = MetricsRegistry::Instance().FindOrCreateHistogram(
      "fix.shard.fanout_us", "us",
      "wall time of one scatter-gather across all shards");
  return *h;
}

std::string ShardDirName(uint64_t generation, uint32_t ordinal) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "gen-%llu/shard-%04u",
                static_cast<unsigned long long>(generation), ordinal);
  return buf;
}

std::string EncodeShardsManifest(const ShardLayout& layout) {
  std::string buf;
  PutFixed32(&buf, kManifestMagic);
  PutFixed32(&buf, kManifestVersion);
  PutFixed32(&buf, layout.shard_count);
  PutFixed64(&buf, layout.generation);
  PutFixed64(&buf, layout.total_docs);
  for (const std::string& dir : layout.shard_dirs) {
    PutFixed32(&buf, static_cast<uint32_t>(dir.size()));
    buf.append(dir);
  }
  return buf;
}

Result<ShardLayout> DecodeShardsManifest(const std::string& buf) {
  if (buf.size() < 28) {
    return Status::Corruption("shards.manifest: truncated header");
  }
  const char* p = buf.data();
  if (DecodeFixed32(p) != kManifestMagic) {
    return Status::Corruption("shards.manifest: bad magic");
  }
  if (DecodeFixed32(p + 4) != kManifestVersion) {
    return Status::Corruption("shards.manifest: unsupported version");
  }
  ShardLayout layout;
  layout.shard_count = DecodeFixed32(p + 8);
  layout.generation = DecodeFixed64(p + 12);
  layout.total_docs = DecodeFixed64(p + 20);
  if (layout.shard_count == 0 || layout.shard_count > kMaxShards) {
    return Status::Corruption("shards.manifest: shard count " +
                              std::to_string(layout.shard_count) +
                              " out of range");
  }
  size_t pos = 28;
  for (uint32_t s = 0; s < layout.shard_count; ++s) {
    if (pos + 4 > buf.size()) {
      return Status::Corruption("shards.manifest: truncated shard dir list");
    }
    const uint32_t len = DecodeFixed32(buf.data() + pos);
    pos += 4;
    if (len > 4096 || pos + len > buf.size()) {
      return Status::Corruption("shards.manifest: truncated shard dir name");
    }
    layout.shard_dirs.emplace_back(buf.data() + pos, len);
    pos += len;
  }
  if (pos != buf.size()) {
    return Status::Corruption("shards.manifest: trailing bytes");
  }
  return layout;
}

/// Deep-copies one document (Document itself is move-only; the binary
/// codec round-trip is the sanctioned copy: ids and text pools survive
/// exactly).
Result<Document> CopyDocument(const Document& doc) {
  std::string buf;
  EncodeDocument(doc, &buf);
  return DecodeDocument(buf);
}

/// Checks that `shard` is a prefix of `master` (same names at the same
/// dense ids). The mirror discipline makes this an invariant of every
/// correctly-persisted layout; a mismatch means the shard was written
/// against a different master and its label ids cannot be trusted.
Status CheckLabelPrefix(const LabelTable& master, const LabelTable& shard,
                        uint32_t ordinal) {
  if (shard.size() > master.size()) {
    return Status::Corruption(
        "shard " + std::to_string(ordinal) + " label table has " +
        std::to_string(shard.size()) + " labels but the master has only " +
        std::to_string(master.size()));
  }
  for (LabelId id = 0; id < shard.size(); ++id) {
    if (shard.Name(id) != master.Name(id)) {
      return Status::Corruption(
          "shard " + std::to_string(ordinal) + " label " + std::to_string(id) +
          " is '" + shard.Name(id) + "' but the master says '" +
          master.Name(id) + "'");
    }
  }
  return Status::OK();
}

}  // namespace

bool IsShardedLayout(const std::string& workdir) {
  std::error_code ec;
  return std::filesystem::exists(workdir + "/" + kManifestName, ec);
}

Result<ShardLayout> ReadShardLayout(const std::string& workdir) {
  std::string buf;
  FIX_ASSIGN_OR_RETURN(buf, ReadFile(workdir + "/" + kManifestName));
  return DecodeShardsManifest(buf);
}

ShardedDatabase::ShardedDatabase(std::string workdir)
    : workdir_(std::move(workdir)) {}

ShardedDatabase::~ShardedDatabase() {
  ReaderMutexLock lock(shards_mu_);
  OpenShards().Add(-static_cast<int64_t>(shards_.size()));
}

uint32_t ShardedDatabase::RouteDoc(uint32_t global_doc_id,
                                   uint32_t shard_count) {
  // splitmix64 finalizer: uniform over shard counts that are not powers of
  // two, and stable forever — Open() re-derives every document's placement
  // from this function alone.
  uint64_t x = global_doc_id;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % shard_count);
}

void ShardedDatabase::SyncShardLabels(const LabelTable& master,
                                      Corpus* corpus) {
  LabelTable* shard = corpus->labels();
  for (LabelId id = static_cast<LabelId>(shard->size()); id < master.size();
       ++id) {
    const LabelId got = shard->Intern(master.Name(id));
    FIX_CHECK(got == id);  // dense append-only ids: mirror reproduces master
  }
}

IndexOptions ShardedDatabase::OptionsForShard(uint32_t s) const {
  auto it = options_.shard_overrides.find(s);
  IndexOptions opts = it != options_.shard_overrides.end() ? it->second
                                                           : options_.index;
  opts.path.clear();  // each shard's Database derives its own
  return opts;
}

Status ShardedDatabase::WriteManifest(const ShardLayout& layout) const {
  const std::string path = workdir_ + "/" + kManifestName;
  const std::string tmp = path + ".tmp";
  FIX_RETURN_IF_ERROR(WriteFile(tmp, EncodeShardsManifest(layout)));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename " + tmp + ": " + ec.message());
  }
  return Status::OK();
}

Status ShardedDatabase::PersistMasterLabels() {
  std::string encoded;
  {
    MutexLock lock(master_mu_);
    encoded = EncodeLabelTable(master_labels_);
  }
  return WriteFile(workdir_ + "/" + kMasterLabelsName, encoded);
}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Partition(
    const Corpus& source, const std::string& workdir,
    ShardedOptions options) {
  if (options.shard_count == 0 || options.shard_count > kMaxShards) {
    return Status::InvalidArgument("shard_count must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  if (IsShardedLayout(workdir)) {
    return Status::InvalidArgument(workdir +
                                   " already holds a sharded layout");
  }
  const uint32_t n = options.shard_count;

  // Per-shard corpora, each a full label-table mirror of the source (the
  // source table IS the initial master).
  std::vector<Corpus> corpora(n);
  for (Corpus& c : corpora) SyncShardLabels(source.labels(), &c);
  for (uint32_t g = 0; g < source.num_docs(); ++g) {
    const uint32_t s = RouteDoc(g, n);
    Document copy;
    FIX_ASSIGN_OR_RETURN(copy, CopyDocument(source.doc(g)));
    corpora[s].AddDocument(std::move(copy));
  }

  ShardLayout layout;
  layout.shard_count = n;
  layout.generation = 0;
  layout.total_docs = source.num_docs();
  for (uint32_t s = 0; s < n; ++s) {
    const std::string dir = ShardDirName(/*generation=*/0, s);
    layout.shard_dirs.push_back(dir);
    std::error_code ec;
    std::filesystem::create_directories(workdir + "/" + dir, ec);
    if (ec) {
      return Status::IOError("mkdir " + workdir + "/" + dir + ": " +
                             ec.message());
    }
    FIX_RETURN_IF_ERROR(corpora[s].Save(workdir + "/" + dir));
  }
  FIX_RETURN_IF_ERROR(WriteFile(workdir + "/" + kMasterLabelsName,
                                EncodeLabelTable(source.labels())));
  {
    // Manifest last: its presence marks the layout complete (IsShardedLayout
    // keys off it, so a crash mid-partition leaves a non-layout).
    ShardedDatabase scratch(workdir);
    FIX_RETURN_IF_ERROR(scratch.WriteManifest(layout));
  }
  return Open(workdir, std::move(options));
}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    const std::string& workdir, ShardedOptions options) {
  ShardLayout layout;
  FIX_ASSIGN_OR_RETURN(layout, ReadShardLayout(workdir));

  std::unique_ptr<ShardedDatabase> db(new ShardedDatabase(workdir));
  db->options_ = std::move(options);
  db->options_.shard_count = layout.shard_count;

  {
    std::string buf;
    FIX_ASSIGN_OR_RETURN(buf, ReadFile(workdir + "/" + kMasterLabelsName));
    MutexLock lock(db->master_mu_);
    FIX_RETURN_IF_ERROR(DecodeLabelTable(buf, &db->master_labels_));
    db->total_docs_ = layout.total_docs;
  }

  // Re-derive every document's placement: local ids ascend in global-id
  // order, so the whole mapping follows from (total_docs, shard_count).
  std::vector<std::vector<uint32_t>> to_global(layout.shard_count);
  for (uint64_t g = 0; g < layout.total_docs; ++g) {
    to_global[RouteDoc(static_cast<uint32_t>(g), layout.shard_count)]
        .push_back(static_cast<uint32_t>(g));
  }

  ShardVector shards;
  shards.reserve(layout.shard_count);
  for (uint32_t s = 0; s < layout.shard_count; ++s) {
    const std::string dir = workdir + "/" + layout.shard_dirs[s];
    // Each shard attaches and audits its own indexes — damage quarantines
    // inside that shard alone and never aborts the sharded open.
    Result<std::unique_ptr<Database>> opened =
        Database::Open(dir, db->options_.open);
    FIX_RETURN_IF_ERROR(opened.status());
    auto shard = std::make_shared<Shard>();
    shard->db = std::move(opened).value();
    shard->ordinal = s;
    shard->dir = dir;
    if (shard->db->corpus()->num_docs() != to_global[s].size()) {
      return Status::Corruption(
          "shard " + std::to_string(s) + " holds " +
          std::to_string(shard->db->corpus()->num_docs()) +
          " documents but the manifest routing expects " +
          std::to_string(to_global[s].size()));
    }
    {
      MutexLock master(db->master_mu_);
      FIX_RETURN_IF_ERROR(CheckLabelPrefix(db->master_labels_,
                                           *shard->db->corpus()->labels(), s));
      WriterMutexLock gate(shard->gate);
      SyncShardLabels(db->master_labels_, shard->db->corpus());
      shard->to_global = std::move(to_global[s]);
    }
    shards.push_back(std::move(shard));
  }
  {
    WriterMutexLock lock(db->shards_mu_);
    db->shards_ = std::move(shards);
    db->generation_ = layout.generation;
  }
  OpenShards().Add(static_cast<int64_t>(layout.shard_count));

  size_t threads = db->options_.scatter_threads > 0
                       ? static_cast<size_t>(db->options_.scatter_threads)
                       : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<size_t>(threads, 64);
  if (layout.shard_count > 1 && threads > 1) {
    db->pool_ = std::make_unique<ThreadPool>(threads);
  }
  return db;
}

ShardedDatabase::ShardVector ShardedDatabase::SnapshotShards() const {
  ReaderMutexLock lock(shards_mu_);
  return shards_;
}

uint32_t ShardedDatabase::shard_count() const {
  ReaderMutexLock lock(shards_mu_);
  return static_cast<uint32_t>(shards_.size());
}

uint64_t ShardedDatabase::num_docs() const {
  MutexLock lock(master_mu_);
  return total_docs_;
}

uint64_t ShardedDatabase::layout_generation() const {
  ReaderMutexLock lock(shards_mu_);
  return generation_;
}

Database* ShardedDatabase::shard_db(uint32_t s) {
  ReaderMutexLock lock(shards_mu_);
  return s < shards_.size() ? shards_[s]->db.get() : nullptr;
}

bool ShardedDatabase::IsDegraded(const std::string& index_name) const {
  for (const auto& shard : SnapshotShards()) {
    if (shard->db->IsDegraded(index_name)) return true;
  }
  return false;
}

std::vector<bool> ShardedDatabase::DegradedShards(
    const std::string& index_name) const {
  ShardVector shards = SnapshotShards();
  std::vector<bool> degraded(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    degraded[s] = shards[s]->db->IsDegraded(index_name);
  }
  return degraded;
}

Status ShardedDatabase::BuildIndexes(const std::string& name,
                                     BuildStats* stats) {
  ShardVector shards = SnapshotShards();
  const size_t n = shards.size();
  std::vector<Status> statuses(n);
  std::vector<BuildStats> per_shard(n);
  // Every shard builds with its own buffer pool, feature cache, and worker
  // budget — the only shared state is the read-only corpus partition.
  ParallelFor(pool_.get(), n, [&](size_t s) {
    Result<FixIndex*> built =
        shards[s]->db->BuildIndex(name, OptionsForShard(
                                            static_cast<uint32_t>(s)),
                                  &per_shard[s]);
    statuses[s] = built.status();
  });
  for (const Status& st : statuses) FIX_RETURN_IF_ERROR(st);
  if (stats != nullptr) {
    BuildStats sum;
    for (const BuildStats& b : per_shard) {
      sum.construction_seconds += b.construction_seconds;
      sum.entries += b.entries;
      sum.oversized_patterns += b.oversized_patterns;
      sum.distinct_patterns += b.distinct_patterns;
      sum.btree_bytes += b.btree_bytes;
      sum.clustered_bytes += b.clustered_bytes;
      sum.bisim_vertices += b.bisim_vertices;
      sum.bisim_edges += b.bisim_edges;
      sum.max_document_depth =
          std::max(sum.max_document_depth, b.max_document_depth);
      sum.feature_cache_hits += b.feature_cache_hits;
      sum.feature_cache_misses += b.feature_cache_misses;
      sum.feature_cache_evictions += b.feature_cache_evictions;
      sum.build_threads_used =
          std::max(sum.build_threads_used, b.build_threads_used);
    }
    *stats = sum;
  }
  return Status::OK();
}

Status ShardedDatabase::RebuildIndexes(const std::string& name) {
  ShardVector shards = SnapshotShards();
  const size_t n = shards.size();
  std::vector<Status> statuses(n);
  ParallelFor(pool_.get(), n, [&](size_t s) {
    Result<FixIndex*> rebuilt = shards[s]->db->RebuildIndex(
        name, OptionsForShard(static_cast<uint32_t>(s)));
    statuses[s] = rebuilt.status();
  });
  for (const Status& st : statuses) FIX_RETURN_IF_ERROR(st);
  return Status::OK();
}

Result<TwigQuery> ShardedDatabase::Compile(const std::string& xpath) {
  if (auto cached = plan_cache_.Lookup(xpath)) return *cached;
  MutexLock lock(master_mu_);
  if (auto cached = plan_cache_.Lookup(xpath)) return *cached;
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, ParseXPath(xpath));
  // Resolve against the master table: every shard's table mirrors it, so
  // the resolved ids are valid on all scatter legs.
  q.ResolveLabels(&master_labels_);
  plan_cache_.Insert(xpath, q);
  return q;
}

Result<ExecStats> ShardedDatabase::ScatterGather(
    const std::string& index_name, const TwigQuery& q,
    std::vector<NodeRef>* results) {
  ShardVector shards = SnapshotShards();
  const size_t n = shards.size();
  TraceSpan span("shard.scatter");
  Timer timer;

  struct Leg {
    Status status;
    ExecStats stats;
    std::vector<NodeRef> results;
  };
  std::vector<Leg> legs(n);
  ParallelFor(n > 1 ? pool_.get() : nullptr, n, [&](size_t s) {
    Leg& leg = legs[s];
    Shard& shard = *shards[s];
    // Shared for the whole leg: corpus appends (insert path) wait, index
    // commits don't (the COW protocol serves pinned readers throughout).
    ReaderMutexLock gate(shard.gate);
    Result<ExecStats> executed = shard.db->ExecuteCompiled(
        index_name, q, results != nullptr ? &leg.results : nullptr,
        /*pool=*/nullptr);
    if (!executed.ok()) {
      leg.status = executed.status();
      return;
    }
    leg.stats = std::move(executed).value();
    // Rewrite local doc ids to global ones. Locals ascend in global order,
    // so each leg's results stay sorted by global doc id — the gather is a
    // pure merge.
    for (NodeRef& r : leg.results) {
      FIX_DCHECK(r.doc_id < shard.to_global.size());
      r.doc_id = shard.to_global[r.doc_id];
    }
  });

  ExecStats merged;
  for (const Leg& leg : legs) {
    FIX_RETURN_IF_ERROR(leg.status);
    merged.total_entries += leg.stats.total_entries;
    merged.candidates += leg.stats.candidates;
    merged.producing += leg.stats.producing;
    merged.producing_valid = merged.producing_valid && leg.stats.producing_valid;
    merged.result_count += leg.stats.result_count;
    merged.covered = merged.covered && leg.stats.covered;
    merged.used_index = merged.used_index && leg.stats.used_index;
    merged.degraded = merged.degraded || leg.stats.degraded;
    merged.lookup_ms += leg.stats.lookup_ms;
    merged.refine_ms += leg.stats.refine_ms;
    merged.entries_scanned += leg.stats.entries_scanned;
    merged.nodes_visited += leg.stats.nodes_visited;
    merged.random_reads += leg.stats.random_reads;
    merged.sequential_bytes += leg.stats.sequential_bytes;
    if (leg.stats.degraded) DegradedLegs().Increment();
  }

  if (results != nullptr) {
    // K-way merge by global doc id. Shards hold disjoint documents and
    // each leg is already sorted, so taking the smallest head's whole
    // per-document run reproduces the unsharded output byte for byte.
    results->clear();
    size_t total = 0;
    for (const Leg& leg : legs) total += leg.results.size();
    results->reserve(total);
    std::vector<size_t> pos(n, 0);
    for (;;) {
      size_t best = n;
      uint32_t best_doc = 0;
      for (size_t s = 0; s < n; ++s) {
        if (pos[s] >= legs[s].results.size()) continue;
        const uint32_t doc = legs[s].results[pos[s]].doc_id;
        if (best == n || doc < best_doc) {
          best = s;
          best_doc = doc;
        }
      }
      if (best == n) break;
      const std::vector<NodeRef>& src = legs[best].results;
      while (pos[best] < src.size() && src[pos[best]].doc_id == best_doc) {
        results->push_back(src[pos[best]++]);
      }
    }
  }

  Scatters().Increment();
  ScatterLegs().Add(n);
  FanoutLatency().Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  span.AddAttr("shards", static_cast<uint64_t>(n));
  span.AddAttr("results", merged.result_count);
  uint64_t degraded_legs = 0;
  for (const Leg& leg : legs) degraded_legs += leg.stats.degraded ? 1 : 0;
  span.AddAttr("degraded_legs", degraded_legs);
  return merged;
}

Result<ExecStats> ShardedDatabase::Query(const std::string& index_name,
                                         const std::string& xpath,
                                         std::vector<NodeRef>* results) {
  TwigQuery q;
  FIX_ASSIGN_OR_RETURN(q, Compile(xpath));
  return ScatterGather(index_name, q, results);
}

Result<std::vector<Database::BatchQueryOutcome>> ShardedDatabase::ExecuteMany(
    const std::string& index_name, const std::vector<std::string>& xpaths) {
  std::vector<Database::BatchQueryOutcome> outcomes(xpaths.size());
  for (size_t i = 0; i < xpaths.size(); ++i) {
    Database::BatchQueryOutcome& out = outcomes[i];
    Result<TwigQuery> compiled = Compile(xpaths[i]);
    if (!compiled.ok()) {
      out.status = compiled.status();  // per-query: batchmates continue
      continue;
    }
    Result<ExecStats> executed =
        ScatterGather(index_name, *compiled, &out.results);
    if (!executed.ok()) {
      // Match Database::ExecuteMany: an unknown index fails the whole
      // batch, anything else stays per-query.
      if (executed.status().IsNotFound()) return executed.status();
      out.status = executed.status();
      continue;
    }
    out.stats = std::move(executed).value();
  }
  return outcomes;
}

Result<uint32_t> ShardedDatabase::InsertXml(const std::string& index_name,
                                            std::string_view xml) {
  ShardVector shards = SnapshotShards();
  std::shared_ptr<Shard> target;
  uint32_t gid = 0;
  uint32_t local = 0;
  {
    MutexLock master(master_mu_);
    Document doc;
    FIX_ASSIGN_OR_RETURN(doc, ParseXml(xml, &master_labels_));
    gid = static_cast<uint32_t>(total_docs_);
    target = shards[RouteDoc(gid, static_cast<uint32_t>(shards.size()))];
    // Exclusive on this shard only while the corpus and primary store
    // mutate — every other shard keeps serving untouched.
    WriterMutexLock gate(target->gate);
    SyncShardLabels(master_labels_, target->db->corpus());
    local = target->db->AddDocument(std::move(doc));
    target->to_global.push_back(gid);
    ++total_docs_;
    FIX_RETURN_IF_ERROR(target->db->Save());
  }
  FIX_RETURN_IF_ERROR(PersistMasterLabels());
  {
    ShardLayout layout;
    {
      ReaderMutexLock lock(shards_mu_);
      layout.shard_count = static_cast<uint32_t>(shards_.size());
      layout.generation = generation_;
      for (const auto& shard : shards_) {
        layout.shard_dirs.push_back(
            shard->dir.substr(workdir_.size() + 1));
      }
    }
    {
      MutexLock master(master_mu_);
      layout.total_docs = total_docs_;
    }
    FIX_RETURN_IF_ERROR(WriteManifest(layout));
  }
  // Index commit last, outside every gate: the shard's COW write path
  // serves its pinned readers throughout. A quarantined shard skips the
  // commit — its full-scan fallback already covers the new document. An
  // empty index name means corpus-only insert (fixd with no serving
  // index configured).
  if (!index_name.empty() && !target->db->IsDegraded(index_name)) {
    FixIndex* idx = target->db->index(index_name);
    if (idx == nullptr) {
      return Status::NotFound("no index named " + index_name);
    }
    FIX_RETURN_IF_ERROR(idx->InsertDocument(local));
  }
  ShardInserts().Increment();
  return gid;
}

Result<std::vector<uint32_t>> ShardedDatabase::InsertMany(
    const std::string& index_name, const std::vector<std::string>& xmls) {
  ShardVector shards = SnapshotShards();
  const uint32_t n = static_cast<uint32_t>(shards.size());
  struct Slice {
    std::vector<uint32_t> locals;
  };
  std::vector<Slice> slices(n);
  std::vector<uint32_t> gids(xmls.size());
  {
    MutexLock master(master_mu_);
    // Parse everything before mutating any shard, so a malformed document
    // fails the batch without leaving earlier batchmates half-inserted.
    std::vector<Document> docs;
    docs.reserve(xmls.size());
    for (const std::string& xml : xmls) {
      Document doc;
      FIX_ASSIGN_OR_RETURN(doc, ParseXml(xml, &master_labels_));
      docs.push_back(std::move(doc));
    }
    for (size_t i = 0; i < docs.size(); ++i) {
      const uint32_t gid = static_cast<uint32_t>(total_docs_++);
      gids[i] = gid;
      const uint32_t s = RouteDoc(gid, n);
      Shard& shard = *shards[s];
      WriterMutexLock gate(shard.gate);
      SyncShardLabels(master_labels_, shard.db->corpus());
      slices[s].locals.push_back(shard.db->AddDocument(std::move(docs[i])));
      shard.to_global.push_back(gid);
    }
  }
  // Persist + index-commit every touched shard in parallel: each leg
  // fsyncs its own primary store and WAL — no lock spans two shards.
  std::vector<Status> statuses(n);
  ParallelFor(pool_.get(), n, [&](size_t s) {
    Shard& shard = *shards[s];
    if (slices[s].locals.empty()) return;
    {
      WriterMutexLock gate(shard.gate);
      statuses[s] = shard.db->Save();
    }
    if (!statuses[s].ok()) return;
    if (index_name.empty() || shard.db->IsDegraded(index_name)) return;
    FixIndex* idx = shard.db->index(index_name);
    if (idx == nullptr) {
      statuses[s] = Status::NotFound("no index named " + index_name);
      return;
    }
    for (uint32_t local : slices[s].locals) {
      statuses[s] = idx->InsertDocument(local);
      if (!statuses[s].ok()) return;
    }
  });
  for (const Status& st : statuses) FIX_RETURN_IF_ERROR(st);
  FIX_RETURN_IF_ERROR(PersistMasterLabels());
  {
    ShardLayout layout;
    {
      ReaderMutexLock lock(shards_mu_);
      layout.shard_count = n;
      layout.generation = generation_;
      for (const auto& shard : shards_) {
        layout.shard_dirs.push_back(shard->dir.substr(workdir_.size() + 1));
      }
    }
    {
      MutexLock master(master_mu_);
      layout.total_docs = total_docs_;
    }
    FIX_RETURN_IF_ERROR(WriteManifest(layout));
  }
  ShardInserts().Add(xmls.size());
  return gids;
}

Status ShardedDatabase::Rebalance(uint32_t new_shard_count,
                                  const std::string& index_name) {
  if (new_shard_count == 0 || new_shard_count > kMaxShards) {
    return Status::InvalidArgument("shard_count must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  ShardVector old_shards = SnapshotShards();
  uint64_t old_gen;
  {
    ReaderMutexLock lock(shards_mu_);
    old_gen = generation_;
  }
  const uint64_t new_gen = old_gen + 1;

  uint64_t total;
  std::vector<std::string> master_names;
  {
    MutexLock master(master_mu_);
    total = total_docs_;
    master_names.reserve(master_labels_.size());
    for (LabelId id = 0; id < master_labels_.size(); ++id) {
      master_names.push_back(master_labels_.Name(id));
    }
  }

  // Snapshot the old placement: global id -> (old shard, local id).
  // Mutators are caller-serialized, so the corpora cannot change under us;
  // live readers share them read-only.
  std::vector<std::pair<uint32_t, uint32_t>> placement(total);
  for (uint32_t s = 0; s < old_shards.size(); ++s) {
    ReaderMutexLock gate(old_shards[s]->gate);
    const std::vector<uint32_t>& to_global = old_shards[s]->to_global;
    for (uint32_t local = 0; local < to_global.size(); ++local) {
      placement[to_global[local]] = {s, local};
    }
  }

  // Build the gen-<G+1> layout at side directories while the old shard
  // vector keeps answering every query — the COW single-writer +
  // live-readers protocol, applied to the whole layout.
  ShardLayout layout;
  layout.shard_count = new_shard_count;
  layout.generation = new_gen;
  layout.total_docs = total;
  std::vector<std::unique_ptr<Database>> fresh(new_shard_count);
  std::vector<std::vector<uint32_t>> new_to_global(new_shard_count);
  for (uint32_t s = 0; s < new_shard_count; ++s) {
    const std::string dir = ShardDirName(new_gen, s);
    layout.shard_dirs.push_back(dir);
    std::error_code ec;
    std::filesystem::create_directories(workdir_ + "/" + dir, ec);
    if (ec) {
      return Status::IOError("mkdir " + workdir_ + "/" + dir + ": " +
                             ec.message());
    }
    fresh[s] = std::make_unique<Database>(workdir_ + "/" + dir);
    for (const std::string& name : master_names) {
      fresh[s]->corpus()->labels()->Intern(name);
    }
  }
  for (uint64_t g = 0; g < total; ++g) {
    const auto [old_s, old_local] = placement[g];
    const uint32_t s = RouteDoc(static_cast<uint32_t>(g), new_shard_count);
    Document copy;
    FIX_ASSIGN_OR_RETURN(
        copy, CopyDocument(old_shards[old_s]->db->corpus()->doc(old_local)));
    fresh[s]->AddDocument(std::move(copy));
    new_to_global[s].push_back(static_cast<uint32_t>(g));
  }
  std::vector<Status> statuses(new_shard_count);
  ParallelFor(pool_.get(), new_shard_count, [&](size_t s) {
    statuses[s] = fresh[s]->Save();
    if (!statuses[s].ok()) return;
    Result<FixIndex*> built = fresh[s]->BuildIndex(
        index_name, OptionsForShard(static_cast<uint32_t>(s)));
    statuses[s] = built.status();
  });
  for (const Status& st : statuses) {
    if (!st.ok()) {
      std::error_code ec;
      std::filesystem::remove_all(workdir_ + "/gen-" + std::to_string(new_gen),
                                  ec);
      return st;
    }
  }

  // Publish: manifest first (a crash after this reopens the new layout),
  // then one atomic swap of the shard vector. In-flight queries finish
  // against the old shards through their snapshot shared_ptrs.
  FIX_RETURN_IF_ERROR(WriteManifest(layout));
  ShardVector new_shards;
  new_shards.reserve(new_shard_count);
  for (uint32_t s = 0; s < new_shard_count; ++s) {
    auto shard = std::make_shared<Shard>();
    shard->db = std::move(fresh[s]);
    shard->ordinal = s;
    shard->dir = workdir_ + "/" + layout.shard_dirs[s];
    {
      WriterMutexLock gate(shard->gate);
      shard->to_global = std::move(new_to_global[s]);
    }
    new_shards.push_back(std::move(shard));
  }
  {
    WriterMutexLock lock(shards_mu_);
    OpenShards().Add(static_cast<int64_t>(new_shard_count) -
                     static_cast<int64_t>(shards_.size()));
    shards_ = std::move(new_shards);
    generation_ = new_gen;
  }
  // Retire the old generation. Readers still draining hold open file
  // descriptors, which keep the unlinked inodes alive until they finish.
  {
    std::error_code ec;
    std::filesystem::remove_all(workdir_ + "/gen-" + std::to_string(old_gen),
                                ec);
    if (ec) {
      FIX_LOG(Error) << "rebalance: could not retire gen-" << old_gen << ": "
                     << ec.message();
    }
  }
  Rebalances().Increment();
  return Status::OK();
}

}  // namespace fix
