// fixdb_scrub: offline integrity verifier for FIX index page files.
//
// Usage: fixdb_scrub [--no-structure] <file.fix> [more files...]
//
// For each file, walks every page verifying the self-describing header
// (magic, format version, embedded page id, CRC32C) and, unless
// --no-structure is given, audits the B+-tree built on those pages
// (node types, depths, fanout, key order, sibling chain, entry counts).
// Never modifies the files. Exits 0 iff every file is clean.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/scrub.h"

int main(int argc, char** argv) {
  fix::ScrubOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-structure") == 0) {
      options.verify_structure = false;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [--no-structure] <file.fix> [more files...]\n",
                  argv[0]);
      return 0;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: %s [--no-structure] <file.fix> [...]\n",
                 argv[0]);
    return 2;
  }

  int failures = 0;
  for (const std::string& path : paths) {
    fix::Result<fix::ScrubReport> result = fix::ScrubPageFile(path, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: cannot scrub: %s\n", path.c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    const fix::ScrubReport& report = result.value();
    if (report.clean()) {
      std::printf("%s: OK (%llu pages verified)\n", path.c_str(),
                  static_cast<unsigned long long>(report.ok_pages));
    } else {
      std::fprintf(stderr, "%s: CORRUPT (%llu/%llu pages verified, %zu violations)\n",
                   path.c_str(),
                   static_cast<unsigned long long>(report.ok_pages),
                   static_cast<unsigned long long>(report.pages),
                   report.violations.size());
      for (const std::string& v : report.violations) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
