// fixdb_scrub: offline integrity verifier for FIX index page files.
//
// Usage: fixdb_scrub [--no-structure] [--wal] <file.fix|sharded-dir> [...]
//
// For each file, walks every page verifying the self-describing header
// (magic, format version, embedded page id, CRC32C) and, unless
// --no-structure is given, audits the B+-tree built on those pages
// (node types, depths, fanout, key order, sibling chain, entry counts).
// With --wal, additionally verifies the write-ahead log sidecar
// (`<file>.wal`): header magic/CRC, a full record walk, and torn-tail
// detection. A missing log is fine (pre-WAL index); a torn or unparseable
// one counts as damage. The spatial-probe sidecar (`<file>.spatial`) is
// always checked the same lenient way: absent is fine (the probe engine
// just falls back to the B+-tree), but a present sidecar must pass its
// CRC32C frame and tree-topology validation. Never modifies the files.
//
// A directory argument carrying shards.manifest (a ShardedDatabase
// workdir, `fixctl build --shards`) expands to every `.fix` page file in
// every live shard directory — the whole sharded layout scrubs in one
// invocation. A manifest that fails validation, or a listed shard
// directory with no index files, counts as damage. Exits 0 iff every
// file is clean.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sharded_database.h"
#include "core/spatial_probe.h"
#include "storage/scrub.h"
#include "storage/wal.h"

namespace {

// Returns true when the log at `path` + ".wal" is clean (or absent).
bool ScrubWal(const std::string& path) {
  const std::string wal_path = path + ".wal";
  fix::Result<fix::WalScanResult> scan = fix::Wal::Inspect(wal_path);
  if (!scan.ok()) {
    if (scan.status().IsNotFound()) {
      std::printf("%s: no WAL (ok)\n", wal_path.c_str());
      return true;
    }
    std::fprintf(stderr, "%s: CORRUPT: %s\n", wal_path.c_str(),
                 scan.status().ToString().c_str());
    return false;
  }
  if (scan->torn_tail) {
    std::fprintf(stderr,
                 "%s: TORN TAIL after %llu intact record(s) (%llu bytes); "
                 "recovery will discard it\n",
                 wal_path.c_str(),
                 static_cast<unsigned long long>(scan->records),
                 static_cast<unsigned long long>(scan->valid_bytes));
    return false;
  }
  if (scan->has_commit) {
    std::printf("%s: OK (%llu record(s), last committed generation %llu)\n",
                wal_path.c_str(),
                static_cast<unsigned long long>(scan->records),
                static_cast<unsigned long long>(
                    scan->last_commit.generation));
  } else {
    std::printf("%s: OK (empty, checkpointed)\n", wal_path.c_str());
  }
  return true;
}

// Returns true when the spatial sidecar at `path` + ".spatial" is clean
// (or absent). Damage here never loses data — the structure rebuilds from
// the B+-tree — but it does silently degrade the probe engine, which is
// exactly what an offline scrub should surface.
bool ScrubSpatial(const std::string& path) {
  const std::string spatial_path = path + ".spatial";
  fix::Result<fix::SpatialProbe::SidecarInfo> info =
      fix::SpatialProbe::InspectSidecar(spatial_path);
  if (!info.ok()) {
    if (info.status().IsNotFound()) {
      std::printf("%s: no spatial sidecar (ok)\n", spatial_path.c_str());
      return true;
    }
    std::fprintf(stderr, "%s: CORRUPT: %s\n", spatial_path.c_str(),
                 info.status().ToString().c_str());
    return false;
  }
  std::printf(
      "%s: OK (%llu entries, %u label tree(s), generation %llu)\n",
      spatial_path.c_str(), static_cast<unsigned long long>(info->total),
      info->labels, static_cast<unsigned long long>(info->generation));
  return true;
}

// Expands a sharded-layout workdir into the `.fix` page files of every
// shard named by its manifest, appending them to `paths`. Sorted within
// each shard so output order is deterministic. Returns false (and prints
// why) when the manifest is unreadable or a shard holds no index files.
bool ExpandShardedLayout(const std::string& workdir,
                         std::vector<std::string>* paths) {
  fix::Result<fix::ShardLayout> layout = fix::ReadShardLayout(workdir);
  if (!layout.ok()) {
    std::fprintf(stderr, "%s: CORRUPT manifest: %s\n", workdir.c_str(),
                 layout.status().ToString().c_str());
    return false;
  }
  std::printf("%s: sharded layout, %u shard(s), generation %llu\n",
              workdir.c_str(), layout->shard_count,
              static_cast<unsigned long long>(layout->generation));
  bool ok = true;
  for (const std::string& dir : layout->shard_dirs) {
    const std::string shard_dir = workdir + "/" + dir;
    std::vector<std::string> shard_files;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(shard_dir, ec)) {
      if (entry.path().extension() == ".fix") {
        shard_files.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "%s: cannot list shard: %s\n", shard_dir.c_str(),
                   ec.message().c_str());
      ok = false;
      continue;
    }
    if (shard_files.empty()) {
      std::fprintf(stderr, "%s: no index files in shard\n",
                   shard_dir.c_str());
      ok = false;
      continue;
    }
    std::sort(shard_files.begin(), shard_files.end());
    paths->insert(paths->end(), shard_files.begin(), shard_files.end());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  fix::ScrubOptions options;
  bool scrub_wal = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-structure") == 0) {
      options.verify_structure = false;
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      scrub_wal = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--no-structure] [--wal] <file.fix|sharded-dir> [...]\n",
          argv[0]);
      return 0;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--no-structure] [--wal] <file.fix|sharded-dir> "
                 "[...]\n",
                 argv[0]);
    return 2;
  }

  int failures = 0;
  // Expand sharded-layout directories in place before scrubbing.
  {
    std::vector<std::string> expanded;
    for (const std::string& path : paths) {
      if (fix::IsShardedLayout(path)) {
        if (!ExpandShardedLayout(path, &expanded)) ++failures;
      } else {
        expanded.push_back(path);
      }
    }
    paths = std::move(expanded);
  }
  for (const std::string& path : paths) {
    fix::Result<fix::ScrubReport> result = fix::ScrubPageFile(path, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: cannot scrub: %s\n", path.c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    const fix::ScrubReport& report = result.value();
    if (report.clean()) {
      std::printf("%s: OK (%llu pages verified)\n", path.c_str(),
                  static_cast<unsigned long long>(report.ok_pages));
    } else {
      std::fprintf(stderr, "%s: CORRUPT (%llu/%llu pages verified, %zu violations)\n",
                   path.c_str(),
                   static_cast<unsigned long long>(report.ok_pages),
                   static_cast<unsigned long long>(report.pages),
                   report.violations.size());
      for (const std::string& v : report.violations) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      ++failures;
    }
    if (scrub_wal && !ScrubWal(path)) ++failures;
    if (!ScrubSpatial(path)) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
