#include "tools/fixlint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>

namespace fixlint {

namespace {

namespace fs = std::filesystem;

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving length and line structure, so the code-shape rules never
/// trip on text inside comments or literals. Handles //, /* */, "...",
/// '...', and R"delim(...)delim"; a ' preceded by an identifier char is
/// treated as a C++14 digit separator, not a char literal.
std::string StripCode(const std::string& in) {
  std::string out = in;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for kRaw: the ")delim\"" closer
  size_t i = 0;
  const size_t n = in.size();
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = in[i];
    switch (st) {
      case St::kCode:
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
          st = St::kLine;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
          st = St::kBlock;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   in[i - 1])) &&
                               in[i - 1] != '_'))) {
          // R"delim( ... )delim"
          size_t j = i + 2;
          std::string delim;
          while (j < n && in[j] != '(' && delim.size() < 16) {
            delim += in[j];
            ++j;
          }
          if (j < n && in[j] == '(') {
            raw_delim = ")" + delim + "\"";
            st = St::kRaw;
            for (size_t k = i; k <= j; ++k) blank(k);
            i = j + 1;
          } else {
            ++i;  // not a raw string after all
          }
        } else if (c == '"') {
          st = St::kStr;
          blank(i);
          ++i;
        } else if (c == '\'' && i > 0 &&
                   (std::isalnum(static_cast<unsigned char>(in[i - 1])) ||
                    in[i - 1] == '_')) {
          ++i;  // digit separator (1'000'000) or suffix; not a literal
        } else if (c == '\'') {
          st = St::kChar;
          blank(i);
          ++i;
        } else {
          ++i;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case St::kBlock:
        if (c == '*' && i + 1 < n && in[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          st = St::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kStr:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"') {
          blank(i);
          st = St::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          blank(i);
          st = St::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kRaw:
        if (c == ')' && in.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) blank(i + k);
          st = St::kCode;
          i += raw_delim.size();
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

/// `line` is 1-based. A finding is suppressed by `// fixlint:ignore(rule)`
/// on its own line or the line directly above.
bool Suppressed(const std::vector<std::string>& raw_lines, int line,
                const std::string& rule) {
  const std::string tag = "fixlint:ignore(" + rule + ")";
  for (int l : {line, line - 1}) {
    if (l >= 1 && l <= static_cast<int>(raw_lines.size()) &&
        raw_lines[l - 1].find(tag) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void Report(std::vector<Finding>* out,
            const std::vector<std::string>& raw_lines,
            const std::string& path, int line, const std::string& rule,
            std::string message) {
  if (Suppressed(raw_lines, line, rule)) return;
  out->push_back(Finding{path, line, rule, std::move(message)});
}

int LineOfOffset(const std::string& content, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(content.begin(), content.begin() + offset, '\n'));
}

// --- raw-lock ---------------------------------------------------------------

void CheckRawLock(const SourceFile& f,
                  const std::vector<std::string>& stripped_lines,
                  const std::vector<std::string>& raw_lines,
                  std::vector<Finding>* out) {
  static const std::regex kCall(
      R"((\.|->)\s*(lock|unlock|lock_shared|unlock_shared|try_lock|try_lock_shared)\s*\()");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(stripped_lines[i], m, kCall)) {
      Report(out, raw_lines, f.path, static_cast<int>(i + 1), "raw-lock",
             "naked ." + m[2].str() +
                 "() call; use MutexLock / ReaderMutexLock / WriterMutexLock "
                 "from common/mutex.h");
    }
  }
}

// --- banned-function --------------------------------------------------------

void CheckBanned(const SourceFile& f,
                 const std::vector<std::string>& stripped_lines,
                 const std::vector<std::string>& raw_lines,
                 std::vector<Finding>* out) {
  static const std::regex kBanned(R"(\b(rand|strcpy|sprintf|gets)\s*\()");
  static const std::regex kDetach(R"((\.|->)\s*detach\s*\()");
  struct Why {
    const char* name;
    const char* fix;
  };
  static const Why kWhy[] = {
      {"rand", "use common/rng.h (seedable, thread-safe)"},
      {"strcpy", "use std::string or std::snprintf"},
      {"sprintf", "use std::snprintf"},
      {"gets", "never safe; use fgets or iostreams"},
  };
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(stripped_lines[i], m, kBanned)) {
      const char* fix = "";
      for (const Why& w : kWhy) {
        if (m[1].str() == w.name) fix = w.fix;
      }
      Report(out, raw_lines, f.path, static_cast<int>(i + 1),
             "banned-function",
             "call to banned function " + m[1].str() + "(); " + fix);
    }
    if (std::regex_search(stripped_lines[i], m, kDetach)) {
      Report(out, raw_lines, f.path, static_cast<int>(i + 1),
             "banned-function",
             "std::thread::detach(): detached threads outlive their state; "
             "join instead");
    }
  }
}

// --- nodiscard-status -------------------------------------------------------

void CheckNodiscard(const SourceFile& f,
                    const std::vector<std::string>& stripped_lines,
                    const std::vector<std::string>& raw_lines,
                    std::vector<Finding>* out) {
  // A declaration line returning Status or Result<...>; specifier keywords
  // may precede the return type. The decl name must be a plain identifier
  // (operators are exempt).
  static const std::regex kDecl(
      R"(^\s*(?:(?:virtual|static|inline|constexpr|explicit|friend)\s+)*(?:Status|Result\s*<.*>)\s+([A-Za-z_]\w*)\s*\()");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    std::smatch m;
    if (!std::regex_search(line, m, kDecl)) continue;
    if (line.find("using ") != std::string::npos ||
        line.find("typedef") != std::string::npos) {
      continue;
    }
    const bool annotated =
        raw_lines[i].find("[[nodiscard]]") != std::string::npos ||
        (i > 0 && raw_lines[i - 1].find("[[nodiscard]]") != std::string::npos);
    if (!annotated) {
      Report(out, raw_lines, f.path, static_cast<int>(i + 1),
             "nodiscard-status",
             m[1].str() +
                 "() returns Status/Result but is not [[nodiscard]]; a "
                 "dropped error is a silent failure");
    }
  }
}

// --- include-guard ----------------------------------------------------------

std::string CanonicalGuard(const std::string& path) {
  std::string p = path;
  if (StartsWith(p, "src/")) p = p.substr(4);
  std::string guard = "FIX_";
  for (char c : p) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const SourceFile& f,
                       const std::vector<std::string>& stripped_lines,
                       const std::vector<std::string>& raw_lines,
                       std::vector<Finding>* out) {
  static const std::regex kIfndef(R"(^\s*#\s*ifndef\s+(\w+))");
  static const std::regex kDefine(R"(^\s*#\s*define\s+(\w+))");
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
  const std::string want = CanonicalGuard(f.path);
  int guard_line = 0;
  std::string got;
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(stripped_lines[i], m, kPragmaOnce)) {
      Report(out, raw_lines, f.path, static_cast<int>(i + 1), "include-guard",
             "#pragma once; this tree uses " + want + " guards");
    }
    if (guard_line == 0 && std::regex_search(stripped_lines[i], m, kIfndef)) {
      guard_line = static_cast<int>(i + 1);
      got = m[1].str();
      // The matching #define must follow on the next directive line.
      bool defined = false;
      for (size_t j = i + 1; j < stripped_lines.size(); ++j) {
        std::smatch d;
        if (std::regex_search(stripped_lines[j], d, kDefine)) {
          defined = d[1].str() == got;
          break;
        }
        // Any non-blank, non-directive line between them breaks the idiom.
        if (stripped_lines[j].find_first_not_of(" \t") != std::string::npos) {
          break;
        }
      }
      if (got != want) {
        Report(out, raw_lines, f.path, guard_line, "include-guard",
               "guard is " + got + ", canonical is " + want);
      } else if (!defined) {
        Report(out, raw_lines, f.path, guard_line, "include-guard",
               "#ifndef " + got + " is not followed by #define " + got);
      }
    }
  }
  if (guard_line == 0) {
    Report(out, raw_lines, f.path, 1, "include-guard",
           "header has no include guard (want " + want + ")");
  }
}

// --- lock-order -------------------------------------------------------------

struct LockEntry {
  int rank = 0;
  std::string name;
  std::string path;  // where seen
  int line = 0;
};

std::vector<LockEntry> ParseDocLockOrder(const std::string& doc) {
  std::vector<LockEntry> entries;
  static const std::regex kEntry(
      R"(^\s*(\d+)\s+([A-Za-z_][A-Za-z0-9_:]*)(\s.*)?$)");
  bool in_block = false;
  int line = 0;
  std::istringstream in(doc);
  std::string l;
  while (std::getline(in, l)) {
    ++line;
    if (l.find("LOCK-ORDER:BEGIN") != std::string::npos) {
      in_block = true;
      continue;
    }
    if (l.find("LOCK-ORDER:END") != std::string::npos) in_block = false;
    if (!in_block) continue;
    std::smatch m;
    if (std::regex_match(l, m, kEntry)) {
      entries.push_back(LockEntry{std::stoi(m[1].str()), m[2].str(),
                                  "docs/ARCHITECTURE.md", line});
    }
  }
  return entries;
}

void CheckLockOrder(const std::vector<SourceFile>& files,
                    const std::string& architecture_doc,
                    std::vector<Finding>* out) {
  if (architecture_doc.empty()) return;
  const std::vector<LockEntry> doc = ParseDocLockOrder(architecture_doc);
  std::map<std::string, LockEntry> doc_by_name;
  for (const LockEntry& e : doc) {
    auto [it, inserted] = doc_by_name.emplace(e.name, e);
    if (!inserted) {
      out->push_back(Finding{e.path, e.line, "lock-order",
                             "duplicate LOCK-ORDER doc entry for " + e.name});
    }
  }
  // Code tags live in comments of src/ files (test fixtures quote them
  // inside string literals, so only src/ is scanned).
  static const std::regex kTag(
      R"(//\s*LOCK-ORDER:\s*(\d+)\s+([A-Za-z_][A-Za-z0-9_:]*))");
  std::map<std::string, LockEntry> code_by_name;
  for (const SourceFile& f : files) {
    if (!StartsWith(f.path, "src/")) continue;
    const std::vector<std::string> raw_lines = SplitLines(f.content);
    for (size_t i = 0; i < raw_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(raw_lines[i], m, kTag)) continue;
      LockEntry tag{std::stoi(m[1].str()), m[2].str(), f.path,
                    static_cast<int>(i + 1)};
      auto it = code_by_name.find(tag.name);
      if (it != code_by_name.end() && it->second.rank != tag.rank) {
        Report(out, raw_lines, f.path, tag.line, "lock-order",
               tag.name + " tagged rank " + std::to_string(tag.rank) +
                   " here but rank " + std::to_string(it->second.rank) +
                   " at " + it->second.path + ":" +
                   std::to_string(it->second.line));
        continue;
      }
      code_by_name.emplace(tag.name, tag);
      auto d = doc_by_name.find(tag.name);
      if (d == doc_by_name.end()) {
        Report(out, raw_lines, f.path, tag.line, "lock-order",
               tag.name +
                   " is not in docs/ARCHITECTURE.md's LOCK-ORDER block");
      } else if (d->second.rank != tag.rank) {
        Report(out, raw_lines, f.path, tag.line, "lock-order",
               tag.name + " tagged rank " + std::to_string(tag.rank) +
                   " but docs/ARCHITECTURE.md declares rank " +
                   std::to_string(d->second.rank));
      }
    }
  }
  for (const LockEntry& e : doc) {
    if (code_by_name.count(e.name) == 0) {
      out->push_back(
          Finding{e.path, e.line, "lock-order",
                  e.name + " is declared in the LOCK-ORDER block but no "
                           "src/ mutex carries its // LOCK-ORDER: tag"});
    }
  }
}

// --- metric-doc-drift -------------------------------------------------------

void CheckMetricDrift(const std::vector<SourceFile>& files,
                      const std::string& observability_doc,
                      std::vector<Finding>* out) {
  if (observability_doc.empty()) return;
  // Doc side: exact backticked metric names. The character class has no
  // '*', so prose globs like `fix.storage.*` are not inventory entries.
  // Two prefixes: `fix.` (library) and `fixd.` (the network service).
  static const std::regex kDocName(R"(`((?:fix|fixd)\.[a-z0-9_.]+)`)");
  std::map<std::string, int> doc_names;  // name -> first line
  for (auto it = std::sregex_iterator(observability_doc.begin(),
                                      observability_doc.end(), kDocName);
       it != std::sregex_iterator(); ++it) {
    doc_names.emplace((*it)[1].str(),
                      LineOfOffset(observability_doc,
                                   static_cast<size_t>(it->position())));
  }
  // Code side: registration sites in src/ (the name string may start on
  // the line after the call, so match the raw multi-line content).
  static const std::regex kReg(
      R"rx(FindOrCreate(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]+)")rx");
  std::map<std::string, bool> code_names;
  for (const SourceFile& f : files) {
    if (!StartsWith(f.path, "src/")) continue;
    const std::vector<std::string> raw_lines = SplitLines(f.content);
    for (auto it = std::sregex_iterator(f.content.begin(), f.content.end(),
                                        kReg);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!StartsWith(name, "fix.") && !StartsWith(name, "fixd.")) continue;
      code_names[name] = true;
      if (doc_names.count(name) == 0) {
        Report(out, raw_lines, f.path,
               LineOfOffset(f.content, static_cast<size_t>(it->position())),
               "metric-doc-drift",
               "metric " + name +
                   " is registered here but not documented in "
                   "docs/OBSERVABILITY.md");
      }
    }
  }
  for (const auto& [name, line] : doc_names) {
    if (code_names.count(name) == 0) {
      out->push_back(Finding{
          "docs/OBSERVABILITY.md", line, "metric-doc-drift",
          "metric " + name + " is documented but never registered in src/"});
    }
  }
}

// --- options-doc-drift ------------------------------------------------------

/// Field names of `struct IndexOptions` from the header's stripped lines.
std::map<std::string, int> IndexOptionsFields(const std::string& header) {
  std::map<std::string, int> fields;  // name -> line
  const std::string stripped = StripCode(header);
  const std::vector<std::string> lines = SplitLines(stripped);
  static const std::regex kField(R"(([A-Za-z_]\w*)\s*(=[^;]*)?;\s*$)");
  bool in_struct = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (!in_struct) {
      if (l.find("struct IndexOptions") != std::string::npos &&
          l.find('{') != std::string::npos) {
        in_struct = true;
      }
      continue;
    }
    if (l.find("};") != std::string::npos) break;
    std::smatch m;
    if (std::regex_search(l, m, kField)) {
      fields.emplace(m[1].str(), static_cast<int>(i + 1));
    }
  }
  return fields;
}

void CheckOptionsDrift(const Config& config, std::vector<Finding>* out) {
  if (config.architecture_doc.empty() || config.index_options_header.empty()) {
    return;
  }
  const std::map<std::string, int> fields =
      IndexOptionsFields(config.index_options_header);
  // Doc side: the first backticked identifier of each table row between the
  // OPTIONS-INVENTORY markers.
  static const std::regex kRowName(R"(^\s*\|\s*`([A-Za-z_]\w*)`)");
  std::map<std::string, int> doc_names;
  bool in_block = false;
  int line = 0;
  std::istringstream in(config.architecture_doc);
  std::string l;
  while (std::getline(in, l)) {
    ++line;
    if (l.find("OPTIONS-INVENTORY:BEGIN") != std::string::npos) {
      in_block = true;
      continue;
    }
    if (l.find("OPTIONS-INVENTORY:END") != std::string::npos) in_block = false;
    if (!in_block) continue;
    std::smatch m;
    if (std::regex_search(l, m, kRowName)) {
      doc_names.emplace(m[1].str(), line);
    }
  }
  for (const auto& [name, fline] : fields) {
    if (doc_names.count(name) == 0) {
      out->push_back(Finding{
          "src/core/index_options.h", fline, "options-doc-drift",
          "IndexOptions::" + name +
              " is not in docs/ARCHITECTURE.md's options inventory"});
    }
  }
  for (const auto& [name, dline] : doc_names) {
    if (fields.count(name) == 0) {
      out->push_back(
          Finding{"docs/ARCHITECTURE.md", dline, "options-doc-drift",
                  "options inventory documents `" + name +
                      "` but IndexOptions has no such field"});
    }
  }
}

}  // namespace

std::vector<std::string> RuleNames() {
  return {"lock-order",       "raw-lock",          "nodiscard-status",
          "metric-doc-drift", "options-doc-drift", "banned-function",
          "include-guard"};
}

std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const Config& config) {
  std::vector<Finding> out;
  for (const SourceFile& f : files) {
    const std::string stripped = StripCode(f.content);
    const std::vector<std::string> raw_lines = SplitLines(f.content);
    const std::vector<std::string> stripped_lines = SplitLines(stripped);
    CheckRawLock(f, stripped_lines, raw_lines, &out);
    CheckBanned(f, stripped_lines, raw_lines, &out);
    if (EndsWith(f.path, ".h")) {
      CheckNodiscard(f, stripped_lines, raw_lines, &out);
      CheckIncludeGuard(f, stripped_lines, raw_lines, &out);
    }
  }
  CheckLockOrder(files, config.architecture_doc, &out);
  CheckMetricDrift(files, config.observability_doc, &out);
  CheckOptionsDrift(config, &out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

namespace {

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              Config* config, std::string* error) {
  const fs::path base(root);
  if (!ReadFile(base / "docs/ARCHITECTURE.md", &config->architecture_doc)) {
    *error = root + " does not look like the repo root "
                    "(docs/ARCHITECTURE.md missing)";
    return false;
  }
  if (!ReadFile(base / "docs/OBSERVABILITY.md", &config->observability_doc)) {
    *error = "docs/OBSERVABILITY.md missing under " + root;
    return false;
  }
  if (!ReadFile(base / "src/core/index_options.h",
                &config->index_options_header)) {
    *error = "src/core/index_options.h missing under " + root;
    return false;
  }
  for (const char* dir : {"src", "tools", "examples", "bench", "tests"}) {
    const fs::path d = base / dir;
    if (!fs::exists(d)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(d)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), base).generic_string();
      if (rel.find("fixlint_golden") != std::string::npos) continue;
      if (!EndsWith(rel, ".h") && !EndsWith(rel, ".cc") &&
          !EndsWith(rel, ".cpp")) {
        continue;
      }
      SourceFile f;
      f.path = rel;
      if (!ReadFile(entry.path(), &f.content)) {
        *error = "cannot read " + rel;
        return false;
      }
      files->push_back(std::move(f));
    }
  }
  std::sort(files->begin(), files->end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return true;
}

std::string FormatFinding(const Finding& f) {
  // Appended piecewise: gcc 12's -Wrestrict misfires (under -O3 -Werror) on
  // the chained `const char* + std::string` temporaries this used to build.
  std::string out = f.path;
  if (f.line > 0) {
    out += ':';
    out += std::to_string(f.line);
  }
  out += ": [";
  out += f.rule;
  out += "] ";
  out += f.message;
  return out;
}

}  // namespace fixlint
