// fixlint CLI: runs the project-invariant analyzer over the repo tree.
//
//   fixlint [--root DIR] [--list-rules]
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage / I/O error.
// Wired into ctest (label `lint`) and tools/ci.sh; see
// docs/STATIC_ANALYSIS.md for the rule catalog.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/fixlint_lib.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& r : fixlint::RuleNames()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    std::fprintf(stderr, "usage: fixlint [--root DIR] [--list-rules]\n");
    return 2;
  }

  std::vector<fixlint::SourceFile> files;
  fixlint::Config config;
  std::string error;
  if (!fixlint::LoadTree(root, &files, &config, &error)) {
    std::fprintf(stderr, "fixlint: %s\n", error.c_str());
    return 2;
  }

  const std::vector<fixlint::Finding> findings =
      fixlint::Analyze(files, config);
  for (const fixlint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", fixlint::FormatFinding(f).c_str());
  }
  if (findings.empty()) {
    std::printf("fixlint: %zu files clean.\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "fixlint: %zu finding(s) in %zu files.\n",
               findings.size(), files.size());
  return 1;
}
