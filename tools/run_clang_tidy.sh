#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over library sources.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [file...]
#
#   build-dir   directory containing compile_commands.json (default: build).
#               Configured automatically: CMAKE_EXPORT_COMPILE_COMMANDS is ON
#               in the top-level CMakeLists.txt.
#   file...     specific sources to check (default: every .cc under src/).
#
# Exits 0 iff clang-tidy reports zero findings. Probes clang-tidy, then
# clang-tidy-18/-17/-16 (set CLANG_TIDY to pin a binary); when none is
# installed (the pinned toolchain image ships gcc only), prints a notice and
# exits 0 so CI keeps working; install clang-tidy locally to get findings.

set -u

cd "$(dirname "$0")/.."

# CLANG_TIDY pins an exact binary; otherwise probe the unversioned name
# first, then the versioned binaries distro packages install without an
# alias (newest first).
if [ -n "${CLANG_TIDY:-}" ]; then
  CANDIDATES=("$CLANG_TIDY")
else
  CANDIDATES=(clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16)
fi
TIDY=""
for cand in "${CANDIDATES[@]}"; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: none of '${CANDIDATES[*]}' found on PATH;" \
       "skipping (0 findings)." >&2
  echo "run_clang_tidy: install clang-tidy or set CLANG_TIDY to enable." >&2
  exit 0
fi

BUILD_DIR="${1:-build}"
if [ $# -gt 0 ]; then shift; fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing." >&2
  echo "run_clang_tidy: configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find src -name '*.cc' | sort)
fi

echo "run_clang_tidy: checking ${#FILES[@]} file(s) with $($TIDY --version | head -n1)"

STATUS=0
for f in "${FILES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$f"; then
    STATUS=1
  fi
done

if [ "$STATUS" -eq 0 ]; then
  echo "run_clang_tidy: clean (0 findings)."
else
  echo "run_clang_tidy: findings reported above." >&2
fi
exit "$STATUS"
