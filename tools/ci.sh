#!/usr/bin/env bash
# CI entry point: builds the two supported configurations, lints changed
# files, and runs the test suite under both.
#
#   1. Release-ish (RelWithDebInfo) with -Werror          -> build/
#   2. ASan/UBSan with -Werror and FIX_DCHECK invariants  -> build-asan/
#   3. clang-tidy over changed files (all of src/ if the diff is empty or
#      git history is unavailable); no-ops when clang-tidy is missing
#   4. ctest in both trees; the asan tree also runs the `sanitizer-clean`
#      labeled smoke subset first for fast failure.
#   5. the `fault-injection` labeled suite as its own stage in both trees
#      (injected I/O faults, torn writes, crash-recovery matrix).
#   6. the WAL crash-recovery loop on its own in both trees (every injected
#      crash point of the data file and of the log, fsync fail-stop,
#      torn-tail discard), plus the bench_qps mixed read/write sweep (95/5
#      and 50/50 commit mixes with p50/p95/p99 and a `.metrics.prom`
#      snapshot carrying the fix.wal.* counters).
#   7. the probe-engine parity smoke: the ProbeEngine test suite plus
#      bench_ablation_spatial, whose FIX_CHECKs abort unless the kd-tree
#      and B+-tree engines return byte-identical candidate sets on all
#      four datasets (and whose CSV carries the probe-work A/B numbers).
#   8. a TSan build running the `concurrency` labeled suite (thread pool,
#      feature cache, parallel index construction, concurrent queries).
#   9. the concurrent-query stress test on its own, in both the Release and
#      TSan trees: many threads against one Database, results checked
#      against single-threaded baselines.
#  10. fixdb_scrub over every index page file persist_test produced
#      (FIX_PERSIST_TEST_DIR keeps the suite's output for this step); the
#      scrub also checks each index's `.spatial` sidecar.
#  11. static-analysis: fixlint (the project-invariant analyzer, see
#      docs/STATIC_ANALYSIS.md) over the whole tree plus the `lint` ctest
#      label, and — when clang++ is installed — a FIX_THREAD_SAFETY=ON
#      build that turns the thread-safety annotations into compile errors.
#  12. docs-check: every relative markdown link in the repo's *.md files
#      must resolve, and the documented headers must keep their
#      thread-safety contracts (plain grep/awk — no extra tooling).
#
# Usage: tools/ci.sh [base-ref]     (base-ref defaults to origin/main, falls
#                                    back to HEAD~1, for the changed-file set)

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BASE_REF="${1:-origin/main}"

echo "=== [1/12] Release build (FIX_WERROR=ON) ==="
cmake -B build -S . -DFIX_WERROR=ON
cmake --build build -j "$JOBS"

echo "=== [2/12] ASan/UBSan build (FIX_WERROR=ON, dchecks on) ==="
cmake -B build-asan -S . -DFIX_WERROR=ON -DFIX_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"

echo "=== [3/12] clang-tidy on changed files ==="
if ! git rev-parse --verify --quiet "$BASE_REF" >/dev/null; then
  BASE_REF="HEAD~1"
fi
CHANGED=()
if git rev-parse --verify --quiet "$BASE_REF" >/dev/null; then
  mapfile -t CHANGED < <(git diff --name-only --diff-filter=d "$BASE_REF" -- \
      'src/*.cc' 'src/*.h' | grep '\.cc$' || true)
fi
if [ "${#CHANGED[@]}" -gt 0 ]; then
  tools/run_clang_tidy.sh build "${CHANGED[@]}"
else
  tools/run_clang_tidy.sh build
fi

echo "=== [4/12] Tests ==="
(cd build-asan && ctest -L sanitizer-clean --output-on-failure)
(cd build-asan && ctest --output-on-failure -j "$JOBS")
(cd build && ctest --output-on-failure -j "$JOBS")

echo "=== [5/12] Fault-injection suite (Release + ASan) ==="
(cd build && ctest -L fault-injection --output-on-failure -j "$JOBS")
(cd build-asan && ctest -L fault-injection --output-on-failure -j "$JOBS")

echo "=== [6/12] WAL crash loop + mixed read/write bench ==="
# The COW+WAL acceptance loop on its own: FaultInjectionPageIo crashes the
# data file and the log at every write index of an InsertDocument commit,
# plus the fsync fail-stop latch, the torn-tail discard, and the online
# rebuild swap. ASan re-runs it to catch lifetime bugs in the replay path.
(cd build && ctest -R '^RecoveryTest\.(Wal|Rebuild)' --output-on-failure)
(cd build-asan && ctest -R '^RecoveryTest\.(Wal|Rebuild)' --output-on-failure)
# Readers at full service while a single writer commits generations: the
# bench_qps mixed sweep (95/5 and 50/50 op mixes) FIX_CHECKs reader
# failures and per-commit generation accounting, and writes p50/p95/p99
# plus a .metrics.prom snapshot next to its CSV. The grep pins the
# snapshot's WAL counters: a sweep that commits nothing through the log is
# a broken sweep.
cmake --build build -j "$JOBS" --target bench_qps
(cd build/bench && ./bench_qps)
grep -q '^fix_wal_appends [1-9]' build/bench/bench_qps.csv.metrics.prom

echo "=== [7/12] Probe-engine parity smoke ==="
# Both probe engines must return byte-identical candidate sets through the
# production ProbeWithEngine entry point. The property test covers seeded
# random corpora under both sound_probe settings including ε boundary
# cases; the ablation bench then FIX_CHECKs candidate parity on all four
# datasets at benchmark scale while measuring the probe-work ratio.
(cd build && ctest -R '^ProbeEngine' --output-on-failure -j "$JOBS")
cmake --build build -j "$JOBS" --target bench_ablation_spatial
(cd build/bench && ./bench_ablation_spatial)

echo "=== [8/12] TSan build + concurrency/observability suites ==="
cmake -B build-tsan -S . -DFIX_WERROR=ON -DFIX_SANITIZE="thread"
cmake --build build-tsan -j "$JOBS"
(cd build-tsan && ctest -L concurrency --output-on-failure -j "$JOBS")
# Snapshot-while-writing and trace-sink races only surface under TSan;
# the observability label also runs in the Release tree via stage 4.
(cd build-tsan && ctest -L observability --output-on-failure -j "$JOBS")

echo "=== [9/12] Concurrent-query stress (Release + TSan) ==="
# The data-race canary for the whole read path: many threads through one
# Database (lock-striped buffer pool, shared B+-tree, plan cache) with
# results diffed against single-threaded baselines. TSan turns a silent
# race into a hard failure.
(cd build && ctest -R '^ConcurrentQueryTest' --output-on-failure -j "$JOBS")
(cd build-tsan && ctest -R '^ConcurrentQueryTest' --output-on-failure \
    -j "$JOBS")

echo "=== [10/12] Scrub of persist_test databases ==="
SCRUB_DIR="$(mktemp -d)"
trap 'rm -rf "$SCRUB_DIR"' EXIT
(cd build && FIX_PERSIST_TEST_DIR="$SCRUB_DIR" ctest -R '^PersistTest' \
    --output-on-failure -j "$JOBS")
mapfile -t INDEX_FILES < <(find "$SCRUB_DIR" -name '*.fix' | sort)
if [ "${#INDEX_FILES[@]}" -eq 0 ]; then
  echo "error: persist_test left no index files to scrub" >&2
  exit 1
fi
build/tools/fixdb_scrub "${INDEX_FILES[@]}"

echo "=== [11/12] static-analysis: fixlint + thread-safety annotations ==="
# fixlint enforces the project invariants a generic linter cannot know
# (lock order vs ARCHITECTURE.md, metric/options doc drift, RAII-only
# locking, banned functions, include guards); one finding fails CI. See
# docs/STATIC_ANALYSIS.md for the catalog and suppression syntax.
cmake --build build -j "$JOBS" --target fixlint
build/tools/fixlint --root .
(cd build && ctest -L lint --output-on-failure)
if command -v clang++ >/dev/null 2>&1; then
  # Only clang's frontend implements -Wthread-safety; this build turns the
  # FIX_GUARDED_BY/FIX_REQUIRES annotations into compile errors.
  cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DFIX_THREAD_SAFETY=ON
  cmake --build build-tsafety -j "$JOBS"
else
  echo "static-analysis: clang++ not found; skipping the FIX_THREAD_SAFETY" \
      "build (the annotations are only verifiable under clang)."
fi

echo "=== [12/12] docs-check ==="
# Every relative link in tracked markdown must resolve. grep emits
# `file:](target)`; the loop strips the wrapper, drops externals and pure
# anchors, and resolves the rest against the linking file's directory.
DOCS_BROKEN=0
while IFS=: read -r md_file link; do
  target="${link#](}"
  target="${target%)}"
  target="${target%%#*}"   # in-page anchors: check only the file part
  [ -z "$target" ] && continue
  case "$target" in
    http://*|https://*|mailto:*) continue ;;
  esac
  if [ ! -e "$(dirname "$md_file")/$target" ]; then
    echo "docs-check: broken link in $md_file: $link" >&2
    DOCS_BROKEN=1
  fi
done < <(git ls-files '*.md' | xargs grep -oHE '\]\([^)]+\)' || true)
# The documented API contracts must not silently disappear: the headers the
# docs point at keep their thread-safety sections (cheap stand-in for a
# doc-coverage linter; no new tooling).
for hdr in src/core/database.h src/core/fix_index.h src/storage/btree.h; do
  if ! grep -qi "thread-safety" "$hdr"; then
    echo "docs-check: $hdr lost its thread-safety contract comment" >&2
    DOCS_BROKEN=1
  fi
done
if [ "$DOCS_BROKEN" -ne 0 ]; then
  echo "docs-check: failures above" >&2
  exit 1
fi

echo "ci.sh: all green."
