#!/usr/bin/env bash
# CI entry point: builds the two supported configurations, lints changed
# files, and runs the test suite under both.
#
#   1. Release-ish (RelWithDebInfo) with -Werror          -> build/
#   2. ASan/UBSan with -Werror and FIX_DCHECK invariants  -> build-asan/
#   3. clang-tidy over changed files (all of src/ if the diff is empty or
#      git history is unavailable); no-ops when clang-tidy is missing
#   4. ctest in both trees; the asan tree also runs the `sanitizer-clean`
#      labeled smoke subset first for fast failure.
#   5. the `fault-injection` labeled suite as its own stage in both trees
#      (injected I/O faults, torn writes, crash-recovery matrix).
#   6. the WAL crash-recovery loop on its own in both trees (every injected
#      crash point of the data file and of the log, fsync fail-stop,
#      torn-tail discard), plus the bench_qps mixed read/write sweep (95/5
#      and 50/50 commit mixes with p50/p95/p99 and a `.metrics.prom`
#      snapshot carrying the fix.wal.* counters) and its shard sweep
#      (1/2/4/8 hash shards x 1/2/4/8 threads through the scatter-gather
#      path, parity-checked per op, mixed read/write per layout, own CSV
#      + snapshot carrying the fix.shard.* counters).
#   7. the probe-engine parity smoke: the ProbeEngine test suite plus
#      bench_ablation_spatial, whose FIX_CHECKs abort unless the kd-tree
#      and B+-tree engines return byte-identical candidate sets on all
#      four datasets (and whose CSV carries the probe-work A/B numbers).
#   8. a TSan build running the `concurrency` labeled suite (thread pool,
#      feature cache, parallel index construction, concurrent queries, the
#      wire codec and the loopback fixd service tests).
#   9. the fixd server smoke: boot the real binary on a loopback port over
#      the deterministic DBLP corpus, prove the wire path lossless with the
#      bench_qps --remote parity sweep, probe /stats over real HTTP, then
#      SIGTERM and require the clean-drain exit code (docs/FIXD.md).
#  10. the concurrent-query stress test on its own, in both the Release and
#      TSan trees: many threads against one Database, results checked
#      against single-threaded baselines.
#  11. fixdb_scrub over every index page file persist_test produced
#      (FIX_PERSIST_TEST_DIR keeps the suite's output for this step); the
#      scrub also checks each index's `.spatial` sidecar.
#  12. the shard-parity smoke + quarantine drill: the same deterministic
#      corpus built monolithic and into four hash shards must answer a
#      query identically (fixctl auto-detects the layout); the sharded
#      layout must scrub clean as a directory; then one shard's page file
#      is corrupted and the reopen must quarantine that shard alone —
#      same answers, a degraded marker, and a now-failing scrub.
#  13. static-analysis: fixlint (the project-invariant analyzer, see
#      docs/STATIC_ANALYSIS.md) over the whole tree plus the `lint` ctest
#      label, and — when clang++ is installed — a FIX_THREAD_SAFETY=ON
#      build that turns the thread-safety annotations into compile errors.
#  14. docs-check: every relative markdown link in the repo's *.md files
#      must resolve, the documented headers must keep their thread-safety
#      contracts, and docs/FIXD.md must name every wire opcode and result
#      code the codec defines (plain grep/awk — no extra tooling).
#
# Usage: tools/ci.sh [base-ref]     (base-ref defaults to origin/main, falls
#                                    back to HEAD~1, for the changed-file set)

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BASE_REF="${1:-origin/main}"

# One EXIT trap for everything the stages leave behind: the fixd server
# process (stage 9) and the temp dirs (stages 9, 11, and 12).
SRV_DIR=""
SRV_PID=""
SCRUB_DIR=""
SHARD_DIR=""
cleanup() {
  if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill -9 "$SRV_PID" 2>/dev/null || true
  fi
  if [ -n "$SRV_DIR" ]; then rm -rf "$SRV_DIR"; fi
  if [ -n "$SCRUB_DIR" ]; then rm -rf "$SCRUB_DIR"; fi
  if [ -n "$SHARD_DIR" ]; then rm -rf "$SHARD_DIR"; fi
}
trap cleanup EXIT

echo "=== [1/14] Release build (FIX_WERROR=ON) ==="
cmake -B build -S . -DFIX_WERROR=ON
cmake --build build -j "$JOBS"

echo "=== [2/14] ASan/UBSan build (FIX_WERROR=ON, dchecks on) ==="
cmake -B build-asan -S . -DFIX_WERROR=ON -DFIX_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"

echo "=== [3/14] clang-tidy on changed files ==="
if ! git rev-parse --verify --quiet "$BASE_REF" >/dev/null; then
  BASE_REF="HEAD~1"
fi
CHANGED=()
if git rev-parse --verify --quiet "$BASE_REF" >/dev/null; then
  mapfile -t CHANGED < <(git diff --name-only --diff-filter=d "$BASE_REF" -- \
      'src/*.cc' 'src/*.h' | grep '\.cc$' || true)
fi
if [ "${#CHANGED[@]}" -gt 0 ]; then
  tools/run_clang_tidy.sh build "${CHANGED[@]}"
else
  tools/run_clang_tidy.sh build
fi

echo "=== [4/14] Tests ==="
(cd build-asan && ctest -L sanitizer-clean --output-on-failure)
(cd build-asan && ctest --output-on-failure -j "$JOBS")
(cd build && ctest --output-on-failure -j "$JOBS")

echo "=== [5/14] Fault-injection suite (Release + ASan) ==="
(cd build && ctest -L fault-injection --output-on-failure -j "$JOBS")
(cd build-asan && ctest -L fault-injection --output-on-failure -j "$JOBS")

echo "=== [6/14] WAL crash loop + mixed read/write bench ==="
# The COW+WAL acceptance loop on its own: FaultInjectionPageIo crashes the
# data file and the log at every write index of an InsertDocument commit,
# plus the fsync fail-stop latch, the torn-tail discard, and the online
# rebuild swap. ASan re-runs it to catch lifetime bugs in the replay path.
(cd build && ctest -R '^RecoveryTest\.(Wal|Rebuild)' --output-on-failure)
(cd build-asan && ctest -R '^RecoveryTest\.(Wal|Rebuild)' --output-on-failure)
# Readers at full service while a single writer commits generations: the
# bench_qps mixed sweep (95/5 and 50/50 op mixes) FIX_CHECKs reader
# failures and per-commit generation accounting, and writes p50/p95/p99
# plus a .metrics.prom snapshot next to its CSV. The grep pins the
# snapshot's WAL counters: a sweep that commits nothing through the log is
# a broken sweep.
cmake --build build -j "$JOBS" --target bench_qps
(cd build/bench && ./bench_qps)
grep -q '^fix_wal_appends [1-9]' build/bench/bench_qps.csv.metrics.prom
# The shard sweep (1/2/4/8 shards x 1/2/4/8 threads, parity-checked
# against the 1-shard baseline, with a mixed read/write phase per layout)
# writes its own CSV + snapshot; the greps pin that the scatter-gather
# path actually ran and routed inserts.
grep -q '^fix_shard_scatters [1-9]' \
    build/bench/bench_qps_shards.csv.metrics.prom
grep -q '^fix_shard_inserts [1-9]' \
    build/bench/bench_qps_shards.csv.metrics.prom

echo "=== [7/14] Probe-engine parity smoke ==="
# Both probe engines must return byte-identical candidate sets through the
# production ProbeWithEngine entry point. The property test covers seeded
# random corpora under both sound_probe settings including ε boundary
# cases; the ablation bench then FIX_CHECKs candidate parity on all four
# datasets at benchmark scale while measuring the probe-work ratio.
(cd build && ctest -R '^ProbeEngine' --output-on-failure -j "$JOBS")
cmake --build build -j "$JOBS" --target bench_ablation_spatial
(cd build/bench && ./bench_ablation_spatial)

echo "=== [8/14] TSan build + concurrency/observability suites ==="
cmake -B build-tsan -S . -DFIX_WERROR=ON -DFIX_SANITIZE="thread"
cmake --build build-tsan -j "$JOBS"
(cd build-tsan && ctest -L concurrency --output-on-failure -j "$JOBS")
# Snapshot-while-writing and trace-sink races only surface under TSan;
# the observability label also runs in the Release tree via stage 4.
(cd build-tsan && ctest -L observability --output-on-failure -j "$JOBS")

echo "=== [9/14] fixd server smoke (loopback) ==="
# The real binary end to end (docs/FIXD.md): serve the deterministic DBLP
# corpus, prove the wire path lossless with the bench_qps --remote parity
# sweep (every result byte-identical to in-process execution), probe the
# HTTP sidecar, then SIGTERM and require the clean-drain exit code.
cmake --build build -j "$JOBS" --target fixd fixctl bench_qps
SRV_DIR="$(mktemp -d)"
build/examples/fixctl gen "$SRV_DIR/db" dblp
# Depth 6 is the paper's DBLP depth limit and what bench_qps builds for
# its in-process ground truth; byte-identical ordering requires the same
# index shape on both sides.
build/examples/fixctl build "$SRV_DIR/db" --depth 6
build/src/server/fixd --dir "$SRV_DIR/db" --port 0 \
    >"$SRV_DIR/fixd.out" 2>"$SRV_DIR/fixd.err" &
SRV_PID=$!
# --port 0 binds a kernel-assigned port; parse it from the startup line.
SRV_PORT=""
for _ in $(seq 1 100); do
  SRV_PORT="$(sed -n 's/^fixd: listening on .*:\([0-9]*\)$/\1/p' \
      "$SRV_DIR/fixd.out")"
  if [ -n "$SRV_PORT" ]; then break; fi
  sleep 0.1
done
if [ -z "$SRV_PORT" ]; then
  echo "error: fixd never printed its listen line" >&2
  cat "$SRV_DIR/fixd.err" >&2
  exit 1
fi
build/examples/fixctl ping "127.0.0.1:$SRV_PORT"
(cd build/bench && ./bench_qps --remote "127.0.0.1:$SRV_PORT")
# curl-equivalent /stats probe over real HTTP (bash /dev/tcp, so the stage
# needs no curl): the sidecar must expose the server's own live counters.
exec 3<>"/dev/tcp/127.0.0.1/$SRV_PORT"
printf 'GET /stats HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
HTTP_STATS="$(cat <&3)"
exec 3<&- 3>&-
grep -q '^fixd_requests_total [1-9]' <<<"$HTTP_STATS"
grep -q 'fixd_request_latency_us' <<<"$HTTP_STATS"
# Graceful drain: SIGTERM must finish in-flight work, exit 0, and say so.
kill -TERM "$SRV_PID"
SRV_STATUS=0
wait "$SRV_PID" || SRV_STATUS=$?
SRV_PID=""
if [ "$SRV_STATUS" -ne 0 ]; then
  echo "error: fixd drain exited with status $SRV_STATUS" >&2
  cat "$SRV_DIR/fixd.err" >&2
  exit 1
fi
grep -q '^fixd: drained cleanly$' "$SRV_DIR/fixd.out"
rm -rf "$SRV_DIR"
SRV_DIR=""

echo "=== [10/14] Concurrent-query stress (Release + TSan) ==="
# The data-race canary for the whole read path: many threads through one
# Database (lock-striped buffer pool, shared B+-tree, plan cache) with
# results diffed against single-threaded baselines. TSan turns a silent
# race into a hard failure.
(cd build && ctest -R '^ConcurrentQueryTest' --output-on-failure -j "$JOBS")
(cd build-tsan && ctest -R '^ConcurrentQueryTest' --output-on-failure \
    -j "$JOBS")

echo "=== [11/14] Scrub of persist_test databases ==="
SCRUB_DIR="$(mktemp -d)"
(cd build && FIX_PERSIST_TEST_DIR="$SCRUB_DIR" ctest -R '^PersistTest' \
    --output-on-failure -j "$JOBS")
mapfile -t INDEX_FILES < <(find "$SCRUB_DIR" -name '*.fix' | sort)
if [ "${#INDEX_FILES[@]}" -eq 0 ]; then
  echo "error: persist_test left no index files to scrub" >&2
  exit 1
fi
build/tools/fixdb_scrub "${INDEX_FILES[@]}"

echo "=== [12/14] Shard-parity smoke + quarantine drill ==="
# The scatter-gather contract end to end through the real binaries: the
# same deterministic corpus built monolithic and into four hash shards
# must produce the identical result count and doc/node pairs (fixctl
# auto-detects the layout from shards.manifest). fixdb_scrub must walk
# the sharded directory clean. Then the drill: corrupt one shard's page
# file, reopen — the damaged shard alone quarantines to its full scan,
# the answers must not change, the output must carry the degraded
# marker, and the scrub must now fail.
cmake --build build -j "$JOBS" --target fixctl fixdb_scrub
SHARD_DIR="$(mktemp -d)"
build/examples/fixctl gen "$SHARD_DIR/flat" tcmd
build/examples/fixctl gen "$SHARD_DIR/sharded" tcmd
build/examples/fixctl build "$SHARD_DIR/flat"
build/examples/fixctl build "$SHARD_DIR/sharded" --shards 4
SHARD_XPATH="//author/contact/email"
# Normalize both outputs to the comparable lines: the result count and
# the printed doc/node pairs (the flat path also prints label names; the
# -o extraction drops them).
build/examples/fixctl query "$SHARD_DIR/flat" "$SHARD_XPATH" \
    | grep -oE '^[0-9]+ result|doc [0-9]+ node [0-9]+' \
    > "$SHARD_DIR/flat.txt"
build/examples/fixctl query "$SHARD_DIR/sharded" "$SHARD_XPATH" \
    | grep -oE '^[0-9]+ result|doc [0-9]+ node [0-9]+' \
    > "$SHARD_DIR/sharded.txt"
diff -u "$SHARD_DIR/flat.txt" "$SHARD_DIR/sharded.txt"
build/tools/fixdb_scrub --wal "$SHARD_DIR/sharded"
dd if=/dev/zero of="$SHARD_DIR/sharded/gen-0/shard-0001/main.fix" \
    bs=1 seek=8192 count=4096 conv=notrunc status=none
build/examples/fixctl query "$SHARD_DIR/sharded" "$SHARD_XPATH" \
    > "$SHARD_DIR/degraded.out"
grep -q 'shard(s) degraded' "$SHARD_DIR/degraded.out"
grep -oE '^[0-9]+ result|doc [0-9]+ node [0-9]+' "$SHARD_DIR/degraded.out" \
    > "$SHARD_DIR/degraded.txt"
diff -u "$SHARD_DIR/flat.txt" "$SHARD_DIR/degraded.txt"
if build/tools/fixdb_scrub "$SHARD_DIR/sharded" >/dev/null 2>&1; then
  echo "error: fixdb_scrub passed a corrupted shard page file" >&2
  exit 1
fi
rm -rf "$SHARD_DIR"
SHARD_DIR=""

echo "=== [13/14] static-analysis: fixlint + thread-safety annotations ==="
# fixlint enforces the project invariants a generic linter cannot know
# (lock order vs ARCHITECTURE.md, metric/options doc drift, RAII-only
# locking, banned functions, include guards); one finding fails CI. See
# docs/STATIC_ANALYSIS.md for the catalog and suppression syntax.
cmake --build build -j "$JOBS" --target fixlint
build/tools/fixlint --root .
(cd build && ctest -L lint --output-on-failure)
if command -v clang++ >/dev/null 2>&1; then
  # Only clang's frontend implements -Wthread-safety; this build turns the
  # FIX_GUARDED_BY/FIX_REQUIRES annotations into compile errors.
  cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DFIX_THREAD_SAFETY=ON
  cmake --build build-tsafety -j "$JOBS"
else
  echo "static-analysis: clang++ not found; skipping the FIX_THREAD_SAFETY" \
      "build (the annotations are only verifiable under clang)."
fi

echo "=== [14/14] docs-check ==="
# Every relative link in tracked markdown must resolve. grep emits
# `file:](target)`; the loop strips the wrapper, drops externals and pure
# anchors, and resolves the rest against the linking file's directory.
DOCS_BROKEN=0
while IFS=: read -r md_file link; do
  target="${link#](}"
  target="${target%)}"
  target="${target%%#*}"   # in-page anchors: check only the file part
  [ -z "$target" ] && continue
  case "$target" in
    http://*|https://*|mailto:*) continue ;;
  esac
  if [ ! -e "$(dirname "$md_file")/$target" ]; then
    echo "docs-check: broken link in $md_file: $link" >&2
    DOCS_BROKEN=1
  fi
done < <(git ls-files '*.md' | xargs grep -oHE '\]\([^)]+\)' || true)
# The documented API contracts must not silently disappear: the headers the
# docs point at keep their thread-safety sections (cheap stand-in for a
# doc-coverage linter; no new tooling).
for hdr in src/core/database.h src/core/fix_index.h src/storage/btree.h \
           src/common/wire.h; do
  if ! grep -qi "thread-safety" "$hdr"; then
    echo "docs-check: $hdr lost its thread-safety contract comment" >&2
    DOCS_BROKEN=1
  fi
done
# docs/FIXD.md is the wire protocol's normative spec: every opcode and
# result code the codec defines must be named there, in backticks. The awk
# pass reads the enumerators straight out of wire.h (Op names convert
# kQueryBatch -> QUERY_BATCH, Code names just drop the k), so adding one
# to the code without specifying it fails CI.
while read -r wire_name; do
  if ! grep -q "\`$wire_name\`" docs/FIXD.md; then
    echo "docs-check: docs/FIXD.md does not document wire name" \
        "'$wire_name' from src/common/wire.h" >&2
    DOCS_BROKEN=1
  fi
done < <(awk '
  /^enum class Op/ { in_op = 1; next }
  /^enum class Code/ { in_code = 1; next }
  /^};/ { in_op = 0; in_code = 0 }
  in_op && match($0, /k[A-Za-z]+/) {
    n = substr($0, RSTART + 1, RLENGTH - 1)
    gsub(/[A-Z]/, "_&", n); sub(/^_/, "", n)
    print toupper(n)
  }
  in_code && match($0, /k[A-Za-z]+/) {
    print substr($0, RSTART + 1, RLENGTH - 1)
  }' src/common/wire.h)
if [ "$DOCS_BROKEN" -ne 0 ]; then
  echo "docs-check: failures above" >&2
  exit 1
fi

echo "ci.sh: all green."
