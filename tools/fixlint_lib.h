// fixlint: the repo's project-invariant analyzer.
//
// A deliberately small token/line-based checker — no libclang, no compile
// database — so it builds and runs on the pinned gcc-only toolchain image
// and finishes in milliseconds over the whole tree. It enforces invariants
// a generic linter cannot know about (see docs/STATIC_ANALYSIS.md for the
// user-facing catalog):
//
//   lock-order         // LOCK-ORDER: tags on mutex declarations must match
//                      the machine-readable block in docs/ARCHITECTURE.md
//   raw-lock           no naked .lock()/.unlock() outside common/mutex.h's
//                      RAII wrappers
//   nodiscard-status   fallible public APIs returning Status/Result<T> in
//                      headers carry [[nodiscard]]
//   metric-doc-drift   metric names registered in code appear in
//                      docs/OBSERVABILITY.md and vice versa
//   options-doc-drift  IndexOptions fields match ARCHITECTURE.md's options
//                      inventory, both directions
//   banned-function    rand/strcpy/sprintf/gets and std::thread detach
//   include-guard      canonical FIX_<PATH>_H_ guards; no #pragma once
//
// Any finding is suppressible at its line (or the line above) with
//   // fixlint:ignore(<rule>)
//
// The analysis is exposed as a library so the golden-suite test
// (tests/fixlint_test.cc) can feed it in-memory snippets with pretend
// paths; tools/fixlint.cc is a thin CLI over LoadTree + Analyze.

#ifndef FIX_TOOLS_FIXLINT_LIB_H_
#define FIX_TOOLS_FIXLINT_LIB_H_

#include <string>
#include <vector>

namespace fixlint {

/// One reported violation.
struct Finding {
  std::string path;
  int line = 0;  // 1-based; 0 = whole-file / cross-file finding
  std::string rule;
  std::string message;
};

/// One input file, already read into memory.
struct SourceFile {
  std::string path;     // repo-relative, '/' separators
  std::string content;  // raw bytes
};

/// Cross-file inputs: the docs the drift rules reconcile code against.
/// Empty content disables the corresponding rule (the golden tests use
/// this to isolate rules; the CLI always passes all three).
struct Config {
  std::string architecture_doc;   // docs/ARCHITECTURE.md content
  std::string observability_doc;  // docs/OBSERVABILITY.md content
  std::string index_options_header;  // src/core/index_options.h content
};

/// Every rule name, in report order (for --list-rules and the tests).
std::vector<std::string> RuleNames();

/// Runs every rule over `files` and returns the findings, sorted by
/// (path, line, rule). Suppression comments have already been honored.
std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const Config& config);

/// Reads the lintable tree under `root` (src/ tools/ examples/ bench/
/// tests/, extensions .h/.cc/.cpp, skipping any path containing
/// "fixlint_golden") plus the Config docs. Returns false when `root` does
/// not look like the repo (missing docs/ARCHITECTURE.md).
bool LoadTree(const std::string& root, std::vector<SourceFile>* files,
              Config* config, std::string* error);

/// "path:line: [rule] message" (line omitted when 0).
std::string FormatFinding(const Finding& f);

}  // namespace fixlint

#endif  // FIX_TOOLS_FIXLINT_LIB_H_
